"""Synthetic Epigenomics workflow (DNA methylation sequencing pipeline).

Structure (Bharathi et al.)::

    per lane L:
      fastQSplit (x1)
        -> F parallel chains of
              filterContams -> sol2sanger -> fastq2bfq -> map
        -> mapMerge (x1, per lane)
    mapMerge outputs -> maqIndex (x1) -> pileup (x1)

so ``N = L * (2 + 4F) + 2``.  The pipeline is chain-dominated and CPU
bound (``map`` is the expensive stage), making it the least parallel
workflow in the suite — a good stress test for schedulers that overfit
to wide fan-outs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dag.activation import File
from repro.dag.graph import Workflow
from repro.util.validate import ValidationError
from repro.workflows.generator import WorkflowRecipe, sample_positive

__all__ = ["EpigenomicsRecipe", "epigenomics"]

RUNTIME_MEANS = {
    "fastQSplit": 25.0,
    "filterContams": 5.0,
    "sol2sanger": 2.0,
    "fastq2bfq": 2.0,
    "map": 90.0,
    "mapMerge": 10.0,
    "maqIndex": 20.0,
    "pileup": 30.0,
}

_MB = 1e6


class EpigenomicsRecipe(WorkflowRecipe):
    """Generator for Epigenomics DAGs of an exact requested size."""

    name = "epigenomics"

    @classmethod
    def min_activations(cls) -> int:
        # L=1, F=1 -> 1*(2+4) + 2
        return 8

    def _solve_shape(self) -> Tuple[int, int]:
        """Find (L, F) with L*(2+4F) + 2 == n, preferring few lanes."""
        n = self.n_activations
        for lanes in range(1, n):
            rem = n - 2 - 2 * lanes
            if rem <= 0:
                break
            if rem % (4 * lanes) == 0:
                fanout = rem // (4 * lanes)
                if fanout >= 1:
                    return lanes, fanout
        raise ValidationError(
            f"cannot construct an Epigenomics DAG with exactly {n} activations"
        )

    def build(self, wf: Workflow, rng: np.random.Generator) -> None:
        lanes, fanout = self._solve_shape()

        merged_maps = []
        for lane in range(lanes):
            chunks = [
                File(f"l{lane}_chunk_{c}.sfq", sample_positive(rng, 3.0 * _MB))
                for c in range(fanout)
            ]
            self.add_task(
                wf,
                "fastQSplit",
                sample_positive(rng, RUNTIME_MEANS["fastQSplit"]),
                inputs=[File(f"lane_{lane}.sfq", sample_positive(rng, 3.0 * _MB * fanout))],
                outputs=chunks,
            )

            lane_maps = []
            for c in range(fanout):
                filtered = File(f"l{lane}_filt_{c}.sfq", sample_positive(rng, 2.5 * _MB))
                self.add_task(
                    wf,
                    "filterContams",
                    sample_positive(rng, RUNTIME_MEANS["filterContams"]),
                    inputs=[chunks[c]],
                    outputs=[filtered],
                )
                fastq = File(f"l{lane}_fq_{c}.fq", sample_positive(rng, 2.5 * _MB))
                self.add_task(
                    wf,
                    "sol2sanger",
                    sample_positive(rng, RUNTIME_MEANS["sol2sanger"]),
                    inputs=[filtered],
                    outputs=[fastq],
                )
                bfq = File(f"l{lane}_bfq_{c}.bfq", sample_positive(rng, 1.5 * _MB))
                self.add_task(
                    wf,
                    "fastq2bfq",
                    sample_positive(rng, RUNTIME_MEANS["fastq2bfq"]),
                    inputs=[fastq],
                    outputs=[bfq],
                )
                mapped = File(f"l{lane}_map_{c}.map", sample_positive(rng, 2.0 * _MB))
                lane_maps.append(mapped)
                self.add_task(
                    wf,
                    "map",
                    sample_positive(rng, RUNTIME_MEANS["map"]),
                    inputs=[bfq],
                    outputs=[mapped],
                )

            merged = File(f"l{lane}_merged.map", sample_positive(rng, 2.0 * _MB * fanout))
            merged_maps.append(merged)
            self.add_task(
                wf,
                "mapMerge",
                sample_positive(rng, RUNTIME_MEANS["mapMerge"]),
                inputs=lane_maps,
                outputs=[merged],
            )

        index = File("reads.index", sample_positive(rng, 1.0 * _MB))
        self.add_task(
            wf,
            "maqIndex",
            sample_positive(rng, RUNTIME_MEANS["maqIndex"]),
            inputs=list(merged_maps),
            outputs=[index],
        )
        self.add_task(
            wf,
            "pileup",
            sample_positive(rng, RUNTIME_MEANS["pileup"]),
            inputs=[index],
            outputs=[File("methylation.pileup", sample_positive(rng, 4.0 * _MB))],
        )


def epigenomics(n_activations: int = 24, seed: int = 0) -> Workflow:
    """Generate an Epigenomics workflow with exactly ``n_activations`` nodes."""
    return EpigenomicsRecipe(n_activations, seed).generate()
