"""Common machinery for synthetic workflow generation.

A :class:`WorkflowRecipe` turns a requested size + seed into a concrete
:class:`~repro.dag.graph.Workflow`.  All randomness flows through a
dedicated RNG stream, so a recipe is a pure function of
``(parameters, seed)``.
"""

from __future__ import annotations

import abc
from typing import List, Optional

import numpy as np

from repro.dag.activation import Activation, File
from repro.dag.graph import Workflow
from repro.util.rng import RngService
from repro.util.validate import ValidationError, check_positive

__all__ = ["WorkflowRecipe", "sample_positive"]


def sample_positive(
    rng: np.random.Generator,
    mean: float,
    cv: float = 0.25,
    minimum: float = 1e-3,
) -> float:
    """Draw a positive value ~ Normal(mean, cv*mean), truncated below.

    Task-runtime distributions in the Bharathi characterization are roughly
    unimodal with moderate dispersion; a truncated normal with a
    coefficient of variation around 0.25 matches the published spreads
    closely enough for scheduling studies.
    """
    check_positive("mean", mean)
    value = rng.normal(mean, cv * mean)
    return max(float(value), minimum, mean * 0.05)


class WorkflowRecipe(abc.ABC):
    """Base class for workflow generators.

    Subclasses implement :meth:`build`, adding activations/edges to the
    provided workflow using the recipe's RNG stream.  Activation ids are
    handed out by :meth:`next_id` in creation order, which matches the
    level-by-level numbering of the published DAX traces (entry tasks get
    the lowest ids).
    """

    #: short registry name, e.g. ``"montage"``
    name: str = "recipe"

    def __init__(self, n_activations: int, seed: int = 0) -> None:
        if n_activations < self.min_activations():
            raise ValidationError(
                f"{type(self).__name__} needs at least "
                f"{self.min_activations()} activations, got {n_activations}"
            )
        self.n_activations = int(n_activations)
        self.seed = int(seed)
        self._next_id = 0

    @classmethod
    def min_activations(cls) -> int:
        """Smallest DAG this recipe can produce."""
        return 1

    @classmethod
    def is_constructible(cls, n_activations: int) -> bool:
        """True if a DAG of exactly this size exists for this recipe.

        Workflow structures impose arithmetic constraints (e.g. Inspiral
        sizes are always even), so not every integer is reachable.
        """
        if n_activations < cls.min_activations():
            return False
        try:
            cls(n_activations, seed=0).generate()
            return True
        except ValidationError:
            return False

    @classmethod
    def nearest_constructible(cls, n_activations: int) -> int:
        """The constructible size closest to ``n_activations`` (ties: below)."""
        base = max(n_activations, cls.min_activations())
        for offset in range(0, base + 64):
            for candidate in (base - offset, base + offset):
                if candidate >= cls.min_activations() and cls.is_constructible(
                    candidate
                ):
                    return candidate
        raise ValidationError(
            f"{cls.__name__} has no constructible size near {n_activations}"
        )

    # -- helpers for subclasses ----------------------------------------

    def next_id(self) -> int:
        """Hand out sequential activation ids."""
        out = self._next_id
        self._next_id += 1
        return out

    def add_task(
        self,
        wf: Workflow,
        activity: str,
        runtime: float,
        inputs: Optional[List[File]] = None,
        outputs: Optional[List[File]] = None,
    ) -> Activation:
        """Create and register an activation with a fresh id."""
        ac = Activation(
            id=self.next_id(),
            activity=activity,
            runtime=runtime,
            inputs=tuple(inputs or ()),
            outputs=tuple(outputs or ()),
        )
        return wf.add_activation(ac)

    # -- public API ---------------------------------------------------------

    def generate(self) -> Workflow:
        """Build, validate and return the workflow."""
        self._next_id = 0
        rng = RngService(self.seed).stream(f"workflow:{self.name}")
        wf = Workflow(f"{self.name}-{self.n_activations}")
        self.build(wf, rng)
        if len(wf) != self.n_activations:
            raise ValidationError(
                f"{type(self).__name__} produced {len(wf)} activations, "
                f"expected {self.n_activations}"
            )
        wf.infer_data_dependencies()
        wf.validate()
        return wf

    @abc.abstractmethod
    def build(self, wf: Workflow, rng: np.random.Generator) -> None:
        """Populate ``wf`` with exactly ``self.n_activations`` activations."""
