"""Synthetic Montage workflow (the paper's evaluation workload).

Montage assembles FITS sky images into a mosaic.  Its DAG has nine
activity levels::

    mProjectPP (xW)  ->  mDiffFit (xD)  ->  mConcatFit  ->  mBgModel
        -> mBackground (xW) -> mImgtbl -> mAdd -> mShrink -> mJPEG

where W is the number of input images and D the number of overlapping
image pairs.  For a requested total of N activations we pick W so that
``2W + D + 6 == N`` with D drawn from consecutive / near-neighbour image
pairs (images along a strip overlap their close neighbours).

Reference runtimes are scaled so that a Montage-50 run lands in the same
few-hundred-second range the paper reports (Tables III/IV); the *ratios*
between activities follow the Bharathi et al. characterization (mDiffFit
and mProjectPP are cheap and wide; mBgModel/mAdd are the expensive
serial bottlenecks).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.dag.activation import File
from repro.dag.graph import Workflow
from repro.util.validate import ValidationError
from repro.workflows.generator import WorkflowRecipe, sample_positive

__all__ = ["MontageRecipe", "montage"]

#: mean reference runtime (seconds on a unit-speed core) per activity
RUNTIME_MEANS: Dict[str, float] = {
    "mProjectPP": 14.0,
    "mDiffFit": 11.0,
    "mConcatFit": 30.0,
    "mBgModel": 50.0,
    "mBackground": 12.0,
    "mImgtbl": 8.0,
    "mAdd": 60.0,
    "mShrink": 25.0,
    "mJPEG": 2.0,
}

_MB = 1e6


def _pair_sequence(width: int) -> List[Tuple[int, int]]:
    """Overlapping image pairs, nearest neighbours first."""
    pairs: List[Tuple[int, int]] = []
    for offset in range(1, width):
        for i in range(width - offset):
            pairs.append((i, i + offset))
    return pairs


class MontageRecipe(WorkflowRecipe):
    """Generator for Montage DAGs of an exact requested size."""

    name = "montage"

    @classmethod
    def min_activations(cls) -> int:
        # width 2 needs 2 mProjectPP + 1 mDiffFit + 2 mBackground + 6 fixed
        return 11

    def _solve_width(self) -> Tuple[int, int]:
        """Find (width, n_difffit) with 2w + d + 6 == n and 1 <= d <= C(w,2)."""
        n = self.n_activations
        # start near the typical shape d ~ 2w  =>  n ~ 4w + 6
        for width in range(max(2, (n - 6) // 4), 1, -1):
            d = n - 2 * width - 6
            if 1 <= d <= width * (width - 1) // 2:
                return width, d
        # fall back to scanning upward (tiny workflows)
        for width in range(2, n):
            d = n - 2 * width - 6
            if 1 <= d <= width * (width - 1) // 2:
                return width, d
        raise ValidationError(
            f"cannot construct a Montage DAG with exactly {n} activations"
        )

    def build(self, wf: Workflow, rng: np.random.Generator) -> None:
        width, n_diff = self._solve_width()
        pairs = _pair_sequence(width)[:n_diff]

        raw = [File(f"raw_{i}.fits", sample_positive(rng, 4.2 * _MB)) for i in range(width)]
        projected = []
        for i in range(width):
            out = File(f"proj_{i}.fits", sample_positive(rng, 8.0 * _MB))
            projected.append(out)
            self.add_task(
                wf,
                "mProjectPP",
                sample_positive(rng, RUNTIME_MEANS["mProjectPP"]),
                inputs=[raw[i]],
                outputs=[out],
            )

        fit_files = []
        for k, (i, j) in enumerate(pairs):
            out = File(f"fit_{k}.tbl", sample_positive(rng, 0.3 * _MB))
            fit_files.append(out)
            self.add_task(
                wf,
                "mDiffFit",
                sample_positive(rng, RUNTIME_MEANS["mDiffFit"]),
                inputs=[projected[i], projected[j]],
                outputs=[out],
            )

        fits_tbl = File("fits_all.tbl", sample_positive(rng, 0.1 * _MB * max(1, n_diff)))
        self.add_task(
            wf,
            "mConcatFit",
            sample_positive(rng, RUNTIME_MEANS["mConcatFit"]),
            inputs=fit_files,
            outputs=[fits_tbl],
        )

        corrections = File("corrections.tbl", sample_positive(rng, 0.1 * _MB))
        self.add_task(
            wf,
            "mBgModel",
            sample_positive(rng, RUNTIME_MEANS["mBgModel"]),
            inputs=[fits_tbl],
            outputs=[corrections],
        )

        corrected = []
        for i in range(width):
            out = File(f"corr_{i}.fits", sample_positive(rng, 8.0 * _MB))
            corrected.append(out)
            self.add_task(
                wf,
                "mBackground",
                sample_positive(rng, RUNTIME_MEANS["mBackground"]),
                inputs=[projected[i], corrections],
                outputs=[out],
            )

        img_tbl = File("images.tbl", sample_positive(rng, 0.1 * _MB))
        self.add_task(
            wf,
            "mImgtbl",
            sample_positive(rng, RUNTIME_MEANS["mImgtbl"]),
            inputs=list(corrected),
            outputs=[img_tbl],
        )

        mosaic = File("mosaic.fits", sample_positive(rng, 5.0 * _MB * width))
        self.add_task(
            wf,
            "mAdd",
            sample_positive(rng, RUNTIME_MEANS["mAdd"]),
            inputs=list(corrected) + [img_tbl],
            outputs=[mosaic],
        )

        shrunk = File("mosaic_small.fits", sample_positive(rng, 2.0 * _MB))
        self.add_task(
            wf,
            "mShrink",
            sample_positive(rng, RUNTIME_MEANS["mShrink"]),
            inputs=[mosaic],
            outputs=[shrunk],
        )

        self.add_task(
            wf,
            "mJPEG",
            sample_positive(rng, RUNTIME_MEANS["mJPEG"]),
            inputs=[shrunk],
            outputs=[File("mosaic.jpg", sample_positive(rng, 0.5 * _MB))],
        )


def montage(n_activations: int = 50, seed: int = 0) -> Workflow:
    """Generate a Montage workflow with exactly ``n_activations`` nodes.

    ``montage(50)`` reproduces the "50 node DAX" workload of the paper's
    evaluation (§IV-B).
    """
    return MontageRecipe(n_activations, seed).generate()
