"""Workflow ensembles — several workflows sharing one fleet.

Scientific campaigns rarely run a single DAG: an *ensemble* submits many
workflow instances (parameter studies, multiple sky tiles) to the same
resource pool.  :func:`merge_workflows` fuses workflows into one DAG
with disjoint components and non-colliding ids/file names, so every
scheduler and the whole learning stack apply unchanged, and
:func:`montage_ensemble` builds the common homogeneous case.

Ensembles also stress exactly what the paper's reward measures: with
several workflows competing, queue times (``tf``) stop being near-zero
and µ's execution-vs-queue balance starts to matter.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.dag.activation import Activation, File
from repro.dag.graph import Workflow
from repro.util.validate import ValidationError
from repro.workflows.montage import montage

__all__ = ["merge_workflows", "montage_ensemble", "split_assignment"]


def merge_workflows(
    workflows: Sequence[Workflow], name: str = "ensemble"
) -> Workflow:
    """Fuse workflows into one DAG of disjoint components.

    Activation ids are renumbered into consecutive blocks (first
    workflow keeps its ids); file names gain a ``wfK/`` prefix so the
    shared-storage namespace cannot collide across instances.

    Returns the merged workflow; component k's activations occupy the
    id range ``[offset_k, offset_k + len(workflows[k]))`` in submission
    order.
    """
    if not workflows:
        raise ValidationError("need at least one workflow")
    merged = Workflow(name)
    offset = 0
    for index, wf in enumerate(workflows):
        wf.validate()
        mapping: Dict[int, int] = {}
        for ac in wf.activations:
            new_id = offset + len(mapping)
            mapping[ac.id] = new_id
            merged.add_activation(
                Activation(
                    id=new_id,
                    activity=ac.activity,
                    runtime=ac.runtime,
                    inputs=tuple(
                        File(f"wf{index}/{f.name}", f.size_bytes)
                        for f in ac.inputs
                    ),
                    outputs=tuple(
                        File(f"wf{index}/{f.name}", f.size_bytes)
                        for f in ac.outputs
                    ),
                )
            )
        for parent, child in wf.edges:
            merged.add_dependency(mapping[parent], mapping[child])
        offset += len(wf)
    merged.validate()
    return merged


def montage_ensemble(
    n_instances: int, n_activations: int = 25, seed: int = 0
) -> Workflow:
    """An ensemble of Montage instances with independent runtimes."""
    if n_instances < 1:
        raise ValidationError("n_instances must be >= 1")
    instances = [
        montage(n_activations, seed=seed + k) for k in range(n_instances)
    ]
    return merge_workflows(
        instances, name=f"montage-ensemble-{n_instances}x{n_activations}"
    )


def split_assignment(
    assignment: Dict[int, int], sizes: Sequence[int]
) -> List[Dict[int, int]]:
    """Split a merged-DAG assignment back into per-instance assignments.

    ``sizes`` are the member workflow sizes in merge order; each returned
    dict is keyed by the member's *original* activation ids (0-based
    block offsets undone).
    """
    total = sum(sizes)
    if sorted(assignment) != list(range(total)):
        raise ValidationError(
            "assignment does not cover the merged id range exactly"
        )
    out: List[Dict[int, int]] = []
    offset = 0
    for size in sizes:
        out.append(
            {i: assignment[offset + i] for i in range(size)}
        )
        offset += size
    return out
