"""Workflow ensembles — several workflows sharing one fleet.

Scientific campaigns rarely run a single DAG: an *ensemble* submits many
workflow instances (parameter studies, multiple sky tiles) to the same
resource pool.  :func:`merge_workflows` fuses workflows into one DAG
with disjoint components and non-colliding ids/file names, so every
scheduler and the whole learning stack apply unchanged, and
:func:`montage_ensemble` builds the common homogeneous case.

Ensembles also stress exactly what the paper's reward measures: with
several workflows competing, queue times (``tf``) stop being near-zero
and µ's execution-vs-queue balance starts to matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dag.activation import Activation, File
from repro.dag.graph import Workflow
from repro.runner import ParallelRunner, Task
from repro.runner.parallel import pack_payloads
from repro.util.validate import ValidationError
from repro.workflows.montage import montage

__all__ = [
    "merge_workflows",
    "montage_ensemble",
    "split_assignment",
    "EnsembleMemberResult",
    "run_ensemble_campaign",
]


def merge_workflows(
    workflows: Sequence[Workflow], name: str = "ensemble"
) -> Workflow:
    """Fuse workflows into one DAG of disjoint components.

    Activation ids are renumbered into consecutive blocks (first
    workflow keeps its ids); file names gain a ``wfK/`` prefix so the
    shared-storage namespace cannot collide across instances.

    Returns the merged workflow; component k's activations occupy the
    id range ``[offset_k, offset_k + len(workflows[k]))`` in submission
    order.
    """
    if not workflows:
        raise ValidationError("need at least one workflow")
    merged = Workflow(name)
    offset = 0
    for index, wf in enumerate(workflows):
        wf.validate()
        mapping: Dict[int, int] = {}
        for ac in wf.activations:
            new_id = offset + len(mapping)
            mapping[ac.id] = new_id
            merged.add_activation(
                Activation(
                    id=new_id,
                    activity=ac.activity,
                    runtime=ac.runtime,
                    inputs=tuple(
                        File(f"wf{index}/{f.name}", f.size_bytes)
                        for f in ac.inputs
                    ),
                    outputs=tuple(
                        File(f"wf{index}/{f.name}", f.size_bytes)
                        for f in ac.outputs
                    ),
                )
            )
        for parent, child in wf.edges:
            merged.add_dependency(mapping[parent], mapping[child])
        offset += len(wf)
    merged.validate()
    return merged


def montage_ensemble(
    n_instances: int, n_activations: int = 25, seed: int = 0
) -> Workflow:
    """An ensemble of Montage instances with independent runtimes."""
    if n_instances < 1:
        raise ValidationError("n_instances must be >= 1")
    instances = [
        montage(n_activations, seed=seed + k) for k in range(n_instances)
    ]
    return merge_workflows(
        instances, name=f"montage-ensemble-{n_instances}x{n_activations}"
    )


@dataclass(frozen=True)
class EnsembleMemberResult:
    """One ensemble member's learning outcome."""

    member: int  #: index within the campaign
    workflow_name: str
    seed: int  #: the derived per-member seed the run used
    simulated_makespan: float
    plan_json: str  #: the learned plan, serialized


def _learn_member(payload, seed: int) -> EnsembleMemberResult:
    """Learn one ensemble member's plan (module-level for the runner)."""
    from repro.core.reassign import ReassignLearner, ReassignParams
    from repro.experiments.environments import fleet_for

    member, n_activations, vcpus, episodes = payload
    wf = montage(n_activations, seed=seed)
    params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=episodes)
    result = ReassignLearner(wf, fleet_for(vcpus), params, seed=seed).learn()
    return EnsembleMemberResult(
        member=member,
        workflow_name=wf.name,
        seed=seed,
        simulated_makespan=result.simulated_makespan,
        plan_json=result.plan.to_json(),
    )


def _learn_member_batch(payload, seed: int) -> List[EnsembleMemberResult]:
    """Learn a packed batch of members through the batched engine.

    ``payload`` entries are ``(member, n_activations, vcpus, episodes,
    member_seed)`` — the per-member seed is *precomputed* with the same
    ``(root seed, campaign id, ("member", k))`` derivation the unpacked
    path uses, so packing cannot change any member's streams and the
    results stay bit-identical for any batch size.
    """
    from repro.core.batch import BatchSpec, learn_batch
    from repro.core.reassign import ReassignParams
    from repro.experiments.environments import fleet_for

    specs = []
    for member, n_activations, vcpus, episodes, member_seed in payload:
        wf = montage(n_activations, seed=member_seed)
        params = ReassignParams(
            alpha=0.5, gamma=1.0, epsilon=0.1, episodes=episodes
        )
        specs.append(
            BatchSpec(
                workflow=wf,
                vms=fleet_for(vcpus),
                params=params,
                seed=member_seed,
            )
        )
    results = learn_batch(specs)
    return [
        EnsembleMemberResult(
            member=member,
            workflow_name=spec.workflow.name,
            seed=member_seed,
            simulated_makespan=result.simulated_makespan,
            plan_json=result.plan.to_json(),
        )
        for (member, _n, _v, _e, member_seed), spec, result in zip(
            payload, specs, results
        )
    ]


def _learn_member_distributed(payload, seed: int) -> EnsembleMemberResult:
    """Learn one member through the distributed actor/learner engine.

    Bit-identical to :func:`_learn_member` at any ``(actors, batch)``
    combination (see :func:`repro.core.distributed.learn_distributed`);
    the parallelism lives inside the run, so campaigns using it stay at
    ``workers=1``.
    """
    from repro.core.distributed import learn_distributed
    from repro.core.reassign import ReassignParams
    from repro.experiments.environments import fleet_for

    member, n_activations, vcpus, episodes, actors, batch = payload
    wf = montage(n_activations, seed=seed)
    params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=episodes)
    result = learn_distributed(
        wf, fleet_for(vcpus), params, seed=seed, n_actors=actors, batch=batch
    )
    return EnsembleMemberResult(
        member=member,
        workflow_name=wf.name,
        seed=seed,
        simulated_makespan=result.simulated_makespan,
        plan_json=result.plan.to_json(),
    )


def run_ensemble_campaign(
    n_instances: int,
    *,
    n_activations: int = 25,
    vcpus: int = 16,
    episodes: int = 50,
    seed: int = 0,
    workers: Optional[int] = 1,
    progress=None,
    batch: int = 8,
    actors: int = 1,
) -> List[EnsembleMemberResult]:
    """Learn an independent ReASSIgN plan for each ensemble member.

    A parameter-study campaign: ``n_instances`` Montage instances with
    independent runtimes each get their own learning run on the shared
    fleet configuration.  Per-member seeds are *derived* — stable
    ``(root seed, campaign id, member index)`` hashes via the runner —
    so the campaign is reproducible and bit-identical for any worker
    count, and members never share a random stream.

    ``batch`` (default 8) packs that many consecutive members per task
    into the batched engine (:func:`repro.core.batch.learn_batch`); the
    derived per-member seeds ride inside the packed payloads, so every
    batch size produces byte-identical member results.  Pass ``batch=1``
    for the historical one-member-per-task path.

    ``actors > 1`` learns each member through the distributed
    actor/learner engine instead (bit-identical results, meant for
    ``workers=1``); ``batch`` then composes with it as the number of
    chained episodes each actor speculates per wave chunk rather than
    the lockstep pack size.
    """
    if n_instances < 1:
        raise ValidationError("n_instances must be >= 1")
    if actors < 1:
        raise ValidationError(f"actors must be >= 1, got {actors}")
    if batch < 1:
        raise ValidationError(f"batch must be >= 1, got {batch}")
    runner = ParallelRunner(
        workers=workers,
        run_id=f"ensemble:{n_instances}x{n_activations}:{vcpus}",
        seed=seed,
        progress=progress,
    )
    if actors > 1:
        tasks = [
            Task(
                key=("member", k),
                fn=_learn_member_distributed,
                payload=(k, n_activations, vcpus, episodes, actors, batch),
            )
            for k in range(n_instances)
        ]
        return [r.value for r in runner.run(tasks)]
    if batch > 1:
        members = [
            (k, n_activations, vcpus, episodes,
             runner.seed_for(("member", k)))
            for k in range(n_instances)
        ]
        tasks = [
            Task(
                key=("members", i),
                fn=_learn_member_batch,
                payload=pack,
            )
            for i, pack in enumerate(pack_payloads(members, batch))
        ]
        return [
            member_result
            for r in runner.run(tasks)
            for member_result in r.value
        ]
    tasks = [
        Task(
            key=("member", k),
            fn=_learn_member,
            payload=(k, n_activations, vcpus, episodes),
        )
        for k in range(n_instances)
    ]
    return [r.value for r in runner.run(tasks)]


def split_assignment(
    assignment: Dict[int, int], sizes: Sequence[int]
) -> List[Dict[int, int]]:
    """Split a merged-DAG assignment back into per-instance assignments.

    ``sizes`` are the member workflow sizes in merge order; each returned
    dict is keyed by the member's *original* activation ids (0-based
    block offsets undone).
    """
    total = sum(sizes)
    if sorted(assignment) != list(range(total)):
        raise ValidationError(
            "assignment does not cover the merged id range exactly"
        )
    out: List[Dict[int, int]] = []
    offset = 0
    for size in sizes:
        out.append(
            {i: assignment[offset + i] for i in range(size)}
        )
        offset += size
    return out
