"""Registry mapping workflow names to generator callables.

Used by the benchmark harness and examples so workloads can be selected by
string name (``make_workflow("montage", 50, seed=1)``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.dag.graph import Workflow
from repro.util.validate import ValidationError
from repro.workflows.cybershake import CyberShakeRecipe, cybershake
from repro.workflows.epigenomics import EpigenomicsRecipe, epigenomics
from repro.workflows.inspiral import InspiralRecipe, inspiral
from repro.workflows.montage import MontageRecipe, montage
from repro.workflows.sipht import SiphtRecipe, sipht

__all__ = ["available_workflows", "make_workflow", "recipe_class", "RECIPES"]

_REGISTRY: Dict[str, Callable[[int, int], Workflow]] = {
    "montage": montage,
    "cybershake": cybershake,
    "epigenomics": epigenomics,
    "inspiral": inspiral,
    "sipht": sipht,
}

#: recipe classes by name (size constructibility queries, introspection)
RECIPES: Dict[str, type] = {
    "montage": MontageRecipe,
    "cybershake": CyberShakeRecipe,
    "epigenomics": EpigenomicsRecipe,
    "inspiral": InspiralRecipe,
    "sipht": SiphtRecipe,
}


def recipe_class(name: str) -> type:
    """The :class:`WorkflowRecipe` subclass registered under ``name``."""
    try:
        return RECIPES[name]
    except KeyError:
        raise ValidationError(
            f"unknown workflow {name!r}; available: {available_workflows()}"
        ) from None

#: sensible default sizes per workflow (the montage default is the paper's)
DEFAULT_SIZES: Dict[str, int] = {
    "montage": 50,
    "cybershake": 30,
    "epigenomics": 24,
    "inspiral": 30,
    "sipht": 30,
}


def available_workflows() -> List[str]:
    """Names accepted by :func:`make_workflow`, sorted."""
    return sorted(_REGISTRY)


def make_workflow(
    name: str, n_activations: Optional[int] = None, seed: int = 0
) -> Workflow:
    """Generate the named workflow.

    Parameters
    ----------
    name:
        One of :func:`available_workflows`.
    n_activations:
        Exact DAG size; defaults to the workflow's standard benchmark size.
    seed:
        Seed for runtimes / file sizes.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown workflow {name!r}; available: {available_workflows()}"
        ) from None
    if n_activations is None:
        n_activations = DEFAULT_SIZES[name]
    return factory(n_activations, seed)
