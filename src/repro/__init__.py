"""repro — a reproduction of *"A Reinforcement Learning Scheduling Strategy
for Parallel Cloud-based Workflows"* (Nascimento et al., IPPS/IPDPS-W 2019).

The package implements the paper's entire stack from scratch:

- :mod:`repro.dag` — the workflow model (activities, activations, files,
  the DAG, Pegasus DAX I/O);
- :mod:`repro.workflows` — synthetic Pegasus benchmark workflows
  (Montage — the paper's workload — plus CyberShake, Epigenomics,
  Inspiral, SIPHT);
- :mod:`repro.sim` — a discrete-event cloud workflow simulator (the
  WorkflowSim substitute) with transfer, fluctuation, failure and
  live-migration models;
- :mod:`repro.schedulers` — HEFT (the paper's baseline) and the classic
  heuristics, plus the online-scheduler interface;
- :mod:`repro.rl` — tabular Q-learning/SARSA/Double-Q, policies and the
  paper's §III-B reward function;
- :mod:`repro.core` — **ReASSIgN** itself (Algorithm 2) and the parameter
  sweep;
- :mod:`repro.scicumulus` — the SciCumulus-RL execution stage: simulated
  AWS cloud, simulated MPI master/slave engine, SQLite provenance;
- :mod:`repro.experiments` — regenerates every table and figure of the
  paper's evaluation.

Quickstart::

    from repro.workflows import montage
    from repro.sim import t2_fleet
    from repro.core import ReassignLearner, ReassignParams

    wf = montage(50, seed=1)                      # the paper's 50-node DAX
    fleet = t2_fleet(n_micro=8, n_2xlarge=1)      # Table I, 16 vCPUs
    params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=100)
    result = ReassignLearner(wf, fleet, params, seed=7).learn()
    print(result.plan.assignment)                 # activation id -> VM id
"""

from repro.core import ReassignLearner, ReassignParams, ReassignScheduler
from repro.dag import Activation, ActivationState, File, Workflow
from repro.schedulers import HeftScheduler, SchedulingPlan
from repro.sim import WorkflowSimulator, t2_fleet
from repro.workflows import make_workflow, montage

__version__ = "1.0.0"

__all__ = [
    "ReassignLearner",
    "ReassignParams",
    "ReassignScheduler",
    "Activation",
    "ActivationState",
    "File",
    "Workflow",
    "HeftScheduler",
    "SchedulingPlan",
    "WorkflowSimulator",
    "t2_fleet",
    "make_workflow",
    "montage",
    "__version__",
]
