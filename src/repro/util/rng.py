"""Deterministic random-number management.

The simulator, the workflow generators, the RL policies and the simulated
cloud each need their own independent random stream: consuming randomness
in one component must not perturb another (otherwise adding, say, a
fluctuation model would silently change which VM an ε-greedy policy
explores).  :class:`RngService` hands out named child streams derived from
one root seed via SeedSequence spawning, which is the numpy-recommended
way to create statistically independent generators.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

import numpy as np

__all__ = ["RngService", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 63-bit child seed from ``root_seed`` and a label.

    Uses a hash rather than sequential offsets so that the mapping from
    label to stream is insensitive to the order in which streams are
    requested.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


class RngService:
    """A registry of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed.  Two services built with the same seed produce identical
        streams for identical stream names, regardless of request order.

    Examples
    --------
    >>> rng = RngService(seed=42)
    >>> a = rng.stream("policy").random()
    >>> b = RngService(seed=42).stream("policy").random()
    >>> a == b
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this service was constructed with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        if not name:
            raise ValueError("stream name must be a non-empty string")
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self._seed, name))
            self._streams[name] = gen
        return gen

    def child(self, name: str) -> "RngService":
        """Return an independent child service (e.g. one per episode)."""
        return RngService(derive_seed(self._seed, f"child:{name}"))

    def spawn_seed(self, name: str) -> int:
        """Return a derived integer seed without creating a stream."""
        return derive_seed(self._seed, name)

    def reset(self, name: Optional[str] = None) -> None:
        """Re-seed one stream (or all streams when ``name`` is None)."""
        if name is None:
            self._streams.clear()
        else:
            self._streams.pop(name, None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngService(seed={self._seed}, streams={sorted(self._streams)})"
