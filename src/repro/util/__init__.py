"""Shared utilities: seeded randomness, formatting, validation and statistics.

Everything stochastic in :mod:`repro` draws from a :class:`RngService` so
that simulations, workflow generators and learning runs are reproducible
from a single integer seed.  No module in the package touches the global
:mod:`random` / :mod:`numpy.random` state.
"""

from repro.util.rng import RngService, derive_seed
from repro.util.stats import RunningStats, welford_merge
from repro.util.plot import ascii_plot, sparkline
from repro.util.tables import format_duration, format_hms, render_table
from repro.util.validate import (
    check_positive,
    check_probability,
    check_non_negative,
    ValidationError,
)

__all__ = [
    "RngService",
    "derive_seed",
    "RunningStats",
    "welford_merge",
    "format_duration",
    "format_hms",
    "render_table",
    "ascii_plot",
    "sparkline",
    "check_positive",
    "check_probability",
    "check_non_negative",
    "ValidationError",
]
