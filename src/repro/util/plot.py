"""Dependency-free ASCII plotting (learning curves, sparklines).

The examples and report render learning curves without matplotlib:
:func:`ascii_plot` draws a series as a fixed-height character canvas,
:func:`sparkline` compresses it to one line of block glyphs.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.util.validate import ValidationError

__all__ = ["ascii_plot", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line block-glyph rendering of a series."""
    values = [float(v) for v in values]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        return _BLOCKS[0] * len(values)
    span = hi - lo
    return "".join(
        _BLOCKS[min(len(_BLOCKS) - 1, int((v - lo) / span * len(_BLOCKS)))]
        for v in values
    )


def ascii_plot(
    values: Sequence[float],
    width: int = 70,
    height: int = 12,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render a series as an ASCII chart with a y-axis.

    Long series are downsampled by bucket means to fit ``width``.
    """
    values = [float(v) for v in values]
    if not values:
        raise ValidationError("nothing to plot")
    if width < 10 or height < 3:
        raise ValidationError("plot must be at least 10x3")

    # downsample to width points (bucket means)
    if len(values) > width:
        bucketed: List[float] = []
        per = len(values) / width
        for i in range(width):
            lo = int(i * per)
            hi = max(lo + 1, int((i + 1) * per))
            chunk = values[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed

    lo, hi = min(values), max(values)
    span = hi - lo if hi > lo else 1.0
    rows = [[" "] * len(values) for _ in range(height)]
    for x, v in enumerate(values):
        y = int(round((v - lo) / span * (height - 1)))
        rows[height - 1 - y][x] = "*"

    label_width = max(len(f"{hi:.1f}"), len(f"{lo:.1f}"))
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(rows):
        if i == 0:
            label = f"{hi:.1f}"
        elif i == height - 1:
            label = f"{lo:.1f}"
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |{''.join(row)}")
    lines.append(f"{'':>{label_width}} +{'-' * len(values)}")
    if y_label:
        lines.append(f"{'':>{label_width}}  {y_label}")
    return "\n".join(lines)
