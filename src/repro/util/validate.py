"""Argument-validation helpers shared across the package.

Simulation bugs caused by out-of-range parameters (negative runtimes,
probabilities above one) are silent and expensive to track down, so public
constructors validate eagerly and raise :class:`ValidationError` with the
offending name and value.
"""

from __future__ import annotations

import math

__all__ = [
    "ValidationError",
    "check_positive",
    "check_non_negative",
    "check_probability",
]


class ValidationError(ValueError):
    """Raised when a user-supplied parameter is out of its legal range."""


def _check_finite_number(name: str, value: float) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{name} must be a number, got {value!r}")
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return value


def check_positive(name: str, value: float) -> float:
    """Validate ``value > 0`` and return it as float."""
    value = _check_finite_number(name, value)
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Validate ``value >= 0`` and return it as float."""
    value = _check_finite_number(name, value)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate ``0 <= value <= 1`` and return it as float."""
    value = _check_finite_number(name, value)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    return value
