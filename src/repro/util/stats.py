"""Incremental statistics used by the reward function and metrics.

The reward of ReASSIgN compares a VM's mean performance index against the
global mean plus one standard deviation.  Those aggregates are updated on
every scheduling decision, so recomputing them from scratch would make the
learning loop quadratic in the number of activations.  :class:`RunningStats`
implements Welford's online algorithm: O(1) update, numerically stable.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["RunningStats", "welford_merge"]


class RunningStats:
    """Online mean/variance accumulator (Welford's algorithm)."""

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, x: float) -> None:
        """Accumulate one observation."""
        x = float(x)
        if math.isnan(x):
            raise ValueError("cannot accumulate NaN")
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def extend(self, xs: Iterable[float]) -> None:
        """Accumulate many observations."""
        for x in xs:
            self.push(x)

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        """Mean of observations (0.0 when empty, matching an idle VM)."""
        return self._mean if self._n else 0.0

    @property
    def variance(self) -> float:
        """Population variance (0.0 for fewer than two observations)."""
        return self._m2 / self._n if self._n >= 2 else 0.0

    @property
    def sample_variance(self) -> float:
        """Unbiased sample variance (0.0 for fewer than two observations)."""
        return self._m2 / (self._n - 1) if self._n >= 2 else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._min

    @property
    def maximum(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._max

    def copy(self) -> "RunningStats":
        out = RunningStats()
        out._n = self._n
        out._mean = self._mean
        out._m2 = self._m2
        out._min = self._min
        out._max = self._max
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunningStats(n={self._n}, mean={self.mean:.6g}, std={self.std:.6g})"


def welford_merge(a: RunningStats, b: RunningStats) -> RunningStats:
    """Merge two accumulators (Chan et al. parallel variant).

    Used to aggregate per-VM statistics into fleet-wide statistics without
    replaying individual observations.
    """
    if a.count == 0:
        return b.copy()
    if b.count == 0:
        return a.copy()
    out = RunningStats()
    n = a.count + b.count
    delta = b.mean - a.mean
    out._n = n
    out._mean = a.mean + delta * (b.count / n)
    out._m2 = a._m2 + b._m2 + delta * delta * (a.count * b.count / n)
    out._min = min(a._min, b._min)
    out._max = max(a._max, b._max)
    return out
