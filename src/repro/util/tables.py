"""Plain-text table rendering and duration formatting.

The benchmark harness regenerates the paper's tables as monospaced text so
that the same rows/columns the paper reports can be diffed by eye.  The
renderer is deliberately dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "format_duration", "format_hms"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.5f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a list of rows as an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of rows; each row must have ``len(headers)`` entries.
    title:
        Optional caption printed above the table.
    """
    str_rows: List[List[str]] = []
    for row in rows:
        row = list(row)
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        str_rows.append([_cell(v) for v in row])

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"

    def fmt_row(cells: Sequence[str]) -> str:
        inner = " | ".join(c.ljust(w) for c, w in zip(cells, widths))
        return f"| {inner} |"

    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(fmt_row(row))
    lines.append(sep)
    return "\n".join(lines)


def format_duration(seconds: float) -> str:
    """Human-friendly duration, e.g. ``93.0 s`` or ``2.5 min``."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds < 120:
        return f"{seconds:.1f} s"
    minutes = seconds / 60.0
    if minutes < 120:
        return f"{minutes:.1f} min"
    return f"{minutes / 60.0:.2f} h"


def format_hms(seconds: float) -> str:
    """Format seconds as ``HH:MM:SS.mmm`` — the style of the paper's Table IV."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    whole = int(seconds)
    millis = int(round((seconds - whole) * 1000))
    if millis == 1000:  # rounding carried over
        whole += 1
        millis = 0
    h, rem = divmod(whole, 3600)
    m, s = divmod(rem, 60)
    return f"{h:02d}:{m:02d}:{s:02d}.{millis:03d}"
