"""Shard-backend equivalence suite: array == shard, bitwise.

The sharded dense Q-storage (``backend="shard"``, optionally
``numpy.memmap``-backed) is pure storage work — PR-level contract:
**no float ever differs** from the monolithic ``array`` backend.
Evidence:

- a Hypothesis property drives both backends through the same random
  interleaving of scalar ops, vector gather/scatter, and full persist
  round-trips (``save_shards``/``load_shards`` vs ``to_json``/
  ``from_json``) and demands identical returns plus byte-identical
  ``to_json()`` at every persist point and at the end;
- a full learning run must match across backends on the Q-table JSON,
  every per-episode record, and the emitted plan — memmap-backed too;
- directed tests pin the shard geometry (append-only row growth, view
  stability), the canonical manifest format, and its failure modes.
"""

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.reassign import ReassignLearner, ReassignParams
from repro.experiments.environments import fleet_for
from repro.rl import QTable
from repro.rl.qshard import MANIFEST_NAME, ShardStore
from repro.util.rng import RngService
from repro.util.validate import ValidationError
from repro.workflows.montage import montage

# (op, state index, action index, value) — indices keep the key space
# small enough that interleavings collide on rows and shard boundaries.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["value", "add", "set", "max_value", "best_action",
             "gather", "scatter", "persist"]
        ),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=6),
        st.floats(min_value=-8.0, max_value=8.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=60,
)


def _apply(table, rng, op, state_idx, action_idx, value):
    state = f"s{state_idx}"
    action = (action_idx, action_idx + 1)
    actions = [(k, k + 1) for k in range(action_idx + 1)]
    if op == "value":
        return table.value(state, action)
    if op == "add":
        return table.add(state, action, value)
    if op == "set":
        table.set(state, action, value)
        return None
    if op == "max_value":
        return table.max_value(state, actions)
    if op == "best_action":
        return table.best_action(state, actions, rng)
    if op == "gather":
        return tuple(table.gather(state, actions))
    # scatter: deterministic values derived from the drawn scalar
    table.scatter(
        state, actions,
        np.array([value + k for k in range(len(actions))]),
    )
    return None


class TestShardBackendEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1), ops=_OPS)
    def test_interleaved_ops_and_persistence_bit_identical(self, seed, ops):
        # 3 rows per shard so ten states span four shards
        shard = QTable(init_scale=1e-3, seed=seed, backend="shard",
                       shard_rows=3)
        array = QTable(init_scale=1e-3, seed=seed, backend="array")
        rng_s = RngService(seed).stream("tie")
        rng_a = RngService(seed).stream("tie")
        n_persists = 0
        with tempfile.TemporaryDirectory() as tmp:
            for op, state_idx, action_idx, value in ops:
                if op == "persist":
                    # full round trip for BOTH tables: each restored
                    # table re-derives the same fresh init stream, so
                    # the interleaving continues in lockstep
                    n_persists += 1
                    fresh = seed + n_persists
                    shard.save_shards(Path(tmp) / f"p{n_persists}")
                    shard = QTable.load_shards(
                        Path(tmp) / f"p{n_persists}", seed=fresh
                    )
                    array = QTable.from_json(
                        array.to_json(), seed=fresh, backend="array"
                    )
                    assert shard.to_json() == array.to_json()
                    continue
                got_s = _apply(shard, rng_s, op, state_idx, action_idx, value)
                got_a = _apply(array, rng_a, op, state_idx, action_idx, value)
                assert got_s == got_a, (op, state_idx, action_idx, value)
        assert shard.items() == array.items()
        assert shard.to_json() == array.to_json()
        assert len(shard) == len(array)

    def test_learning_run_bit_identical(self):
        results = {}
        for backend in ("array", "shard"):
            params = ReassignParams(episodes=4, qtable_backend=backend)
            learner = ReassignLearner(
                montage(25, seed=1), fleet_for(16), params, seed=7
            )
            results[backend] = learner.learn()
        base, got = results["array"], results["shard"]
        assert got.qtable_json == base.qtable_json
        assert [e.to_dict() for e in got.episodes] == [
            e.to_dict() for e in base.episodes
        ]
        assert got.plan.to_json() == base.plan.to_json()

    def test_memmap_backed_table_bit_identical(self, tmp_path):
        mm = QTable(init_scale=1e-3, seed=4, backend="shard",
                    shard_rows=2, shard_dir=tmp_path / "mm")
        ram = QTable(init_scale=1e-3, seed=4, backend="array")
        rng_m = RngService(4).stream("tie")
        rng_r = RngService(4).stream("tie")
        actions = [(k, k + 1) for k in range(5)]
        for i in range(9):
            state = f"s{i % 5}"
            assert mm.add(state, actions[i % 5], 0.5 * i) == ram.add(
                state, actions[i % 5], 0.5 * i
            )
            assert mm.best_action(state, actions, rng_m) == ram.best_action(
                state, actions, rng_r
            )
        assert mm.stats()["memmapped"] is True
        assert mm.to_json() == ram.to_json()


class TestShardStoreGeometry:
    def test_row_growth_is_append_only(self):
        store = ShardStore(shard_rows=4)
        store.ensure_rows(1)
        store.ensure_cols(3)
        row = store.q_row(2)
        row[1] = 5.0
        store.ensure_rows(40)  # appends shards, never copies
        assert store.n_shards == 10
        assert store.q_row(2)[1] == 5.0
        assert store.rows == 40

    def test_column_growth_preserves_values(self):
        store = ShardStore(shard_rows=2)
        store.ensure_rows(5)
        store.q_row(4)[0] = 2.5
        store.known_row(4)[0] = True
        store.ensure_cols(100)
        assert store.cols >= 100
        assert store.q_row(4)[0] == 2.5
        assert bool(store.known_row(4)[0])

    def test_invalid_shard_rows(self):
        with pytest.raises(ValidationError, match="shard_rows"):
            ShardStore(shard_rows=0)

    def test_memmap_backing(self, tmp_path):
        store = ShardStore(shard_rows=2, directory=tmp_path / "mm")
        store.ensure_rows(3)
        assert store.memmapped
        assert (tmp_path / "mm" / "shard-00000.dat").exists()
        store.q_row(2)[0] = 1.25
        assert store.q_row(2)[0] == 1.25


class TestShardManifest:
    def _saved(self, tmp_path):
        table = QTable(init_scale=1e-3, seed=5, backend="shard",
                       shard_rows=2)
        for i in range(5):
            table.set(f"s{i}", (i, i + 1), float(i))
        manifest_path = table.save_shards(tmp_path / "save")
        return table, manifest_path

    def test_manifest_is_canonical_json(self, tmp_path):
        table, manifest_path = self._saved(tmp_path)
        assert manifest_path.name == MANIFEST_NAME
        text = manifest_path.read_text(encoding="utf-8")
        data = json.loads(text)
        assert data["format"] == "qtable-shard-v1"
        assert data["n_states"] == 5
        assert len(data["shards"]) == 3  # ceil(5 / 2) shards written
        # canonical: sorted keys, trailing newline
        assert text == json.dumps(data, indent=1, sort_keys=True) + "\n"

    def test_round_trip_restores_intern_order(self, tmp_path):
        table, _ = self._saved(tmp_path)
        back = QTable.load_shards(tmp_path / "save", seed=5)
        assert back.to_json() == table.to_json()
        assert back.stats()["n_states"] == table.stats()["n_states"]
        assert len(back) == len(table)

    def test_missing_manifest_is_a_validation_error(self, tmp_path):
        with pytest.raises(ValidationError, match="manifest"):
            QTable.load_shards(tmp_path / "nope")

    def test_unsupported_format_is_rejected(self, tmp_path):
        target = tmp_path / "bad"
        target.mkdir()
        (target / MANIFEST_NAME).write_text(
            json.dumps({"format": "qtable-shard-v999"}), encoding="utf-8"
        )
        with pytest.raises(ValidationError, match="unsupported"):
            QTable.load_shards(target)

    def test_save_shards_requires_shard_backend(self, tmp_path):
        with pytest.raises(ValidationError, match="shard"):
            QTable(backend="array").save_shards(tmp_path)


class TestBackendValidationAndStats:
    def test_unknown_backend_lists_allowed_sorted(self):
        with pytest.raises(
            ValidationError,
            match=r"backend must be one of 'array', 'dict', 'shard', "
                  r"got 'rocksdb'",
        ):
            QTable(backend="rocksdb")

    def test_shard_dir_requires_shard_backend(self, tmp_path):
        with pytest.raises(ValidationError, match="shard_dir"):
            QTable(backend="array", shard_dir=tmp_path)

    def test_stats_counts_and_bytes(self):
        table = QTable(backend="array")
        table.set("s0", (0, 1), 1.0)
        table.set("s0", (1, 2), 2.0)
        table.set("s1", (0, 1), 3.0)
        stats = table.stats()
        assert stats["backend"] == "array"
        assert stats["n_states"] == 2
        assert stats["n_actions"] == 2
        assert stats["n_known"] == 3
        assert stats["nbytes"] > 0

    def test_stats_shard_geometry(self):
        table = QTable(backend="shard", shard_rows=2)
        for i in range(5):
            table.set(f"s{i}", (0, 1), float(i))
        stats = table.stats()
        assert stats["backend"] == "shard"
        assert stats["n_shards"] == 3
        assert stats["shard_rows"] == 2
        assert stats["memmapped"] is False
        assert stats["nbytes"] > 0

    def test_stats_dict_backend_has_no_dense_bytes(self):
        table = QTable(backend="dict")
        table.set("s", (0, 1), 1.0)
        assert table.stats()["nbytes"] is None
