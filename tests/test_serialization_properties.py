"""Property-based round-trip tests for every serialization format."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.dag import parse_dax, write_dax, random_layered_dag
from repro.schedulers import SchedulingPlan
from repro.scicumulus import workflow_from_xml, workflow_to_xml
from repro.rl import QTable


@st.composite
def layered_wf(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    density = draw(st.floats(min_value=0.0, max_value=1.0))
    seed = draw(st.integers(min_value=0, max_value=999))
    return random_layered_dag(n, edge_density=density, seed=seed)


class TestDaxRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(wf=layered_wf())
    def test_structure_preserved(self, wf):
        back = parse_dax(write_dax(wf))
        assert back.activation_ids == wf.activation_ids
        assert back.edges == wf.edges
        for i in wf.activation_ids:
            a, b = wf.activation(i), back.activation(i)
            assert a.activity == b.activity
            assert b.runtime == pytest.approx(a.runtime, rel=1e-5)
            assert {f.name for f in a.outputs} == {f.name for f in b.outputs}

    @settings(max_examples=25, deadline=None)
    @given(wf=layered_wf())
    def test_double_round_trip_is_stable(self, wf):
        once = write_dax(parse_dax(write_dax(wf)))
        twice = write_dax(parse_dax(once))
        assert once == twice


class TestSciCumulusXmlRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(wf=layered_wf())
    def test_structure_preserved(self, wf):
        back = workflow_from_xml(workflow_to_xml(wf))
        assert back.activation_ids == wf.activation_ids
        assert back.edges == wf.edges
        assert back.name == wf.name


class TestPlanJsonRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_arbitrary_plans(self, data):
        n = data.draw(st.integers(min_value=1, max_value=40))
        vms = data.draw(st.integers(min_value=1, max_value=9))
        assignment = {
            i: data.draw(st.integers(min_value=0, max_value=vms - 1))
            for i in range(n)
        }
        priority = data.draw(st.permutations(list(range(n))))
        plan = SchedulingPlan(assignment=assignment, priority=list(priority),
                              name="fuzz")
        back = SchedulingPlan.from_json(plan.to_json())
        assert back.assignment == plan.assignment
        assert back.priority == plan.priority
        assert back.name == "fuzz"
        # and the JSON itself is valid, stable JSON
        assert json.loads(plan.to_json()) == json.loads(back.to_json())


class TestQTableJsonRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_arbitrary_tables(self, data):
        t = QTable(init_scale=0.0)
        n = data.draw(st.integers(min_value=0, max_value=30))
        for _ in range(n):
            state = data.draw(st.sampled_from(
                ["available", "unavailable", "available:p1"]))
            action = (
                data.draw(st.integers(min_value=0, max_value=60)),
                data.draw(st.integers(min_value=0, max_value=14)),
            )
            value = data.draw(st.floats(min_value=-1e6, max_value=1e6,
                                        allow_nan=False))
            t.set(state, action, value)
        back = QTable.from_json(t.to_json())
        assert back.items() == t.items()
