"""Batched lockstep engine: bit-identical to the serial decision loop.

``repro.core.batch.learn_batch`` drives B learning lanes through one
shared simulation kernel — pure performance work, so the PR-level
contract is byte-equality against ``ReassignLearner.learn()``:

- a Hypothesis property learns random layered DAGs batched and serial
  and demands identical ``LearningResult.to_json()``;
- directed tests sweep the batch width over B ∈ {1, 2, 7, 32}, cover
  the shard backend, ineligible-lane fallbacks (SARSA / Double-Q /
  bucketed states) mixed into one batch, and the sweep fingerprint
  across worker counts and batch sizes;
- the vectorized RL primitives (``gather``/``scatter``,
  ``choose_batch``, ``update_batch``) are each pinned against their
  scalar counterparts;
- ``adopt_kernel``'s safety rails reject double adoption and
  mismatched kernel configurations.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch import BatchSpec, fast_lane_eligible, learn_batch
from repro.core.reassign import ReassignLearner, ReassignParams
from repro.dag.activation import Activation
from repro.dag.graph import Workflow
from repro.experiments.environments import fleet_for
from repro.rl import QTable
from repro.rl.policy import EpsilonGreedyPolicy
from repro.rl.qlearning import QLearningAgent
from repro.util.rng import RngService
from repro.util.validate import ValidationError
from repro.workflows.montage import montage


def random_dag(seed: int, n_min: int = 4, n_max: int = 10) -> Workflow:
    """A random layered DAG — deterministic in ``seed``."""
    rng = random.Random(seed)
    n = rng.randint(n_min, n_max)
    wf = Workflow(f"random-{seed}-{n}")
    for i in range(n):
        wf.add_activation(
            Activation(id=i, activity=f"a{i}",
                       runtime=round(rng.uniform(1.0, 60.0), 3))
        )
    for child in range(1, n):
        for parent in range(child):
            if rng.random() < 0.3:
                wf.add_dependency(parent, child)
    wf.validate()
    return wf


def _spec(wf, seed, **params):
    return BatchSpec(
        workflow=wf,
        vms=fleet_for(16),
        params=ReassignParams(episodes=params.pop("episodes", 3), **params),
        seed=seed,
    )


def _serial(spec: BatchSpec):
    return ReassignLearner(
        spec.workflow,
        spec.vms,
        spec.params,
        seed=spec.seed,
        max_attempts=spec.max_attempts,
        single_slot_learning=spec.single_slot_learning,
    ).learn()


def _fp(result):
    """Everything in ``to_json()`` except the wall-clock learning time."""
    import json

    data = json.loads(result.to_json())
    data.pop("learning_time", None)
    return data


class TestBatchedVsSerial:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_dags_bitwise_equal(self, seed):
        wf = random_dag(seed)
        specs = [
            _spec(wf, seed, alpha=0.5, epsilon=0.1),
            _spec(wf, seed + 1, alpha=0.9, epsilon=0.5),
            _spec(random_dag(seed + 7), seed, alpha=0.1, epsilon=0.1),
        ]
        batched = learn_batch(specs)
        for spec, got in zip(specs, batched):
            assert _fp(got) == _fp(_serial(spec))

    @pytest.mark.parametrize("width", [1, 2, 7, 32])
    def test_batch_widths_bitwise_equal(self, width):
        pool = [random_dag(100 + k, n_min=4, n_max=7) for k in range(4)]
        grid = [(0.1, 0.1), (0.5, 0.1), (0.9, 0.5), (1.0, 0.9)]
        specs = [
            _spec(pool[k % 4], seed=k % 3, episodes=2,
                  alpha=grid[k % 4][0], epsilon=grid[k % 4][1])
            for k in range(width)
        ]
        batched = learn_batch(specs)
        assert len(batched) == width
        for spec, got in zip(specs, batched):
            assert _fp(got) == _fp(_serial(spec))

    def test_shard_backend_lane_bitwise_equal(self):
        wf = montage(25, seed=2)
        specs = [
            _spec(wf, 5, qtable_backend="shard"),
            _spec(wf, 5, qtable_backend="array"),
        ]
        shard_lane, array_lane = learn_batch(specs)
        assert shard_lane.qtable_json == array_lane.qtable_json
        assert _fp(shard_lane) == _fp(_serial(specs[0]))

    def test_ineligible_lanes_fall_back_and_still_match(self):
        wf = random_dag(42, n_min=5, n_max=8)
        specs = [
            _spec(wf, 1),  # fast lane
            _spec(wf, 1, rule="sarsa"),
            _spec(wf, 1, rule="doubleq"),
            _spec(wf, 1, state_buckets=4),
            _spec(wf, 1, qtable_backend="dict"),
        ]
        assert fast_lane_eligible(specs[0].params)
        for spec in specs[1:]:
            assert not fast_lane_eligible(spec.params)
        batched = learn_batch(specs)
        for spec, got in zip(specs, batched):
            assert _fp(got) == _fp(_serial(spec))

    def test_simulated_timing_matches_serial_clock(self):
        from repro.core.reassign import SimulatedLearningClock

        wf = montage(25, seed=3)
        spec = _spec(wf, 9)
        batched = learn_batch([spec], timing="simulated")[0]
        serial = ReassignLearner(
            wf, spec.vms, spec.params, seed=9,
            clock=SimulatedLearningClock(),
        ).learn()
        assert batched.to_json() == serial.to_json()
        assert batched.learning_time == batched.simulated_learning_time

    def test_invalid_timing_rejected(self):
        with pytest.raises(ValidationError, match="timing"):
            learn_batch([_spec(montage(25, seed=0), 0)], timing="cpu")

    def test_empty_batch_is_empty(self):
        assert learn_batch([]) == []


class TestSweepFingerprints:
    def _sweep(self, workers, batch):
        from repro.experiments.sweeps import run_paper_sweep

        return run_paper_sweep(
            montage(25, seed=1),
            vcpu_fleets=(16,),
            episodes=2,
            seed=1,
            grid=(0.1, 1.0),
            workers=workers,
            timing="simulated",
            batch=batch,
        )

    def test_workers_and_batch_invariant(self):
        def fingerprint(sweep):
            return [
                (r.params, r.learning_time, r.simulated_makespan,
                 r.result.qtable_json, r.result.plan.to_json())
                for r in sweep.records[16]
            ]

        base = fingerprint(self._sweep(workers=1, batch=1))
        assert fingerprint(self._sweep(workers=1, batch=8)) == base
        assert fingerprint(self._sweep(workers=4, batch=8)) == base
        assert fingerprint(self._sweep(workers=4, batch=3)) == base


class TestVectorizedPrimitives:
    def test_gather_matches_scalar_values(self):
        batched = QTable(init_scale=1e-3, seed=11)
        scalar = QTable(init_scale=1e-3, seed=11)
        actions = [(k, k + 1) for k in range(6)]
        got = batched.gather("s", actions)
        want = np.array([scalar.value("s", a) for a in actions])
        assert np.array_equal(got, want)
        # repeat gathers read, never re-draw
        assert np.array_equal(batched.gather("s", actions), want)

    def test_scatter_matches_scalar_sets(self):
        batched = QTable(seed=1)
        scalar = QTable(seed=1)
        actions = [(0, 1), (1, 2), (2, 3)]
        values = np.array([1.5, -2.0, 0.25])
        batched.scatter("s", actions, values)
        for a, v in zip(actions, values):
            scalar.set("s", a, float(v))
        assert batched.to_json() == scalar.to_json()
        assert len(batched) == len(scalar)

    def test_scatter_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="one value per action"):
            QTable().scatter("s", [(0, 1)], np.zeros(2))

    def test_choose_batch_matches_scalar_choose(self):
        policy = EpsilonGreedyPolicy(0.3)
        tables_b = [QTable(seed=k) for k in range(3)]
        tables_s = [QTable(seed=k) for k in range(3)]
        batches = [[(k, k + 1) for k in range(n)] for n in (4, 0, 2)]
        rngs_b = [RngService(k).stream("pick") for k in range(3)]
        rngs_s = [RngService(k).stream("pick") for k in range(3)]
        got = policy.choose_batch(tables_b, "s", batches, rngs_b)
        want = [
            policy.choose(t, "s", acts, r) if acts else None
            for t, acts, r in zip(tables_s, batches, rngs_s)
        ]
        assert got == want
        assert got[1] is None  # empty lane -> "do nothing"

    def test_choose_batch_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="per lane"):
            EpsilonGreedyPolicy(0.1).choose_batch(
                [QTable()], "s", [[], []], [RngService(0).stream("x")]
            )

    def test_update_batch_matches_sequential_updates(self):
        def transitions():
            return [
                ("s0", (0, 1), 1.0, "s1", [(0, 1), (1, 2)], 1),
                ("s1", (1, 2), -0.5, "s2", [(2, 3)], 2),
                ("s2", (2, 3), 0.25, "s3", [], 3),
            ]

        fused = QLearningAgent(alpha=0.5, gamma=0.9, seed=3)
        sequential = QLearningAgent(alpha=0.5, gamma=0.9, seed=3)
        got = fused.update_batch(transitions())
        want = np.array(
            [sequential.update(*tr) for tr in transitions()]
        )
        assert np.array_equal(got, want)
        assert fused.qtable.to_json() == sequential.qtable.to_json()

    def test_update_batch_read_after_write_stays_sequential(self):
        # second transition bootstraps from the first one's write target,
        # which must force the exact sequential path
        def transitions():
            return [
                ("s0", (0, 1), 1.0, "s1", [(0, 1)], 1),
                ("s1", (0, 1), 0.5, "s0", [(0, 1)], 2),
            ]

        fused = QLearningAgent(alpha=1.0, gamma=1.0, seed=6)
        sequential = QLearningAgent(alpha=1.0, gamma=1.0, seed=6)
        got = fused.update_batch(transitions())
        want = np.array(
            [sequential.update(*tr) for tr in transitions()]
        )
        assert np.array_equal(got, want)
        assert fused.qtable.to_json() == sequential.qtable.to_json()


class TestAdoptKernel:
    def test_adopting_over_a_built_kernel_is_rejected(self):
        wf = montage(25, seed=0)
        donor = ReassignLearner(wf, fleet_for(16))
        recipient = ReassignLearner(wf, fleet_for(16))
        recipient.kernel  # builds
        with pytest.raises(ValidationError, match="already has a kernel"):
            recipient.adopt_kernel(donor.kernel, donor.kernel_fingerprint())

    def test_fingerprint_mismatch_is_rejected(self):
        donor = ReassignLearner(montage(25, seed=0), fleet_for(16))
        other = ReassignLearner(montage(25, seed=0), fleet_for(32))
        with pytest.raises(ValidationError, match="fingerprint mismatch"):
            other.adopt_kernel(donor.kernel, donor.kernel_fingerprint())

    def test_adopted_kernel_is_shared(self):
        wf = montage(25, seed=0)
        donor = ReassignLearner(wf, fleet_for(16))
        recipient = ReassignLearner(wf, fleet_for(16))
        recipient.adopt_kernel(donor.kernel, donor.kernel_fingerprint())
        assert recipient.kernel is donor.kernel


class TestBatchSpecValidation:
    def test_pack_payloads_rejects_zero(self):
        from repro.runner import pack_payloads

        with pytest.raises(ValidationError, match="batch size"):
            pack_payloads([1, 2, 3], 0)

    def test_pack_payloads_chunks_consecutively(self):
        from repro.runner import pack_payloads

        assert pack_payloads([1, 2, 3, 4, 5], 2) == [(1, 2), (3, 4), (5,)]
        assert pack_payloads([], 3) == []


class TestCliBatchFlag:
    def test_batch_zero_is_a_clean_parser_error(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["sweep", "--batch", "0"])
        assert exc.value.code == 2
        assert "batch must be >= 1" in capsys.readouterr().err

    def test_batch_non_integer_is_a_clean_parser_error(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["ensemble", "--batch", "many"])
        assert exc.value.code == 2
        assert "batch must be an integer" in capsys.readouterr().err

    def test_help_describes_batched_execution(self, capsys):
        from repro.cli import build_parser

        for command in ("learn", "sweep", "ensemble"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--help"])
            out = capsys.readouterr().out
            assert "--batch" in out
            assert "lane" in out
