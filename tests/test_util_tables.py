"""Tests for repro.util.tables — rendering and duration formatting."""

import pytest

from repro.util.tables import format_duration, format_hms, render_table


class TestRenderTable:
    def test_basic_shape(self):
        out = render_table(["a", "bb"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert len(lines) == 6  # sep, header, sep, 2 rows, sep
        assert "| a" in lines[1] and "bb" in lines[1]

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        out = render_table(["col"], [["short"], ["a-much-longer-cell"]])
        widths = {len(line) for line in out.splitlines()}
        assert len(widths) == 1  # all lines equal width

    def test_float_formatting(self):
        out = render_table(["v"], [[1.23456789]])
        assert "1.23457" in out

    def test_wrong_row_length_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "| a" in out


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(93.0) == "93.0 s"

    def test_minutes(self):
        assert format_duration(300.0) == "5.0 min"

    def test_hours(self):
        assert format_duration(7200.0) == "2.00 h"

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)


class TestFormatHms:
    def test_paper_style(self):
        # the paper's Table IV shows e.g. 00:03:09.625
        assert format_hms(189.625) == "00:03:09.625"

    def test_zero(self):
        assert format_hms(0.0) == "00:00:00.000"

    def test_hours(self):
        assert format_hms(3661.5) == "01:01:01.500"

    def test_millisecond_rounding_carry(self):
        assert format_hms(59.9999) == "00:01:00.000"

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_hms(-0.5)
