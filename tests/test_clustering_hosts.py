"""Tests for task clustering (repro.dag.clustering) and the physical
host layer (repro.sim.host)."""

import pytest

from repro.dag.clustering import (
    ClusteredWorkflow,
    horizontal_clustering,
    vertical_clustering,
)
from repro.schedulers import HeftScheduler, PlanFollowingScheduler
from repro.sim import WorkflowSimulator, ZeroCostNetwork, t2_fleet
from repro.sim.host import Host, HostPool, host_failure_revocations
from repro.sim.vm import VM_TYPES, Vm
from repro.util.validate import ValidationError
from repro.workflows import montage


class TestHorizontalClustering:
    def test_covers_all_activations(self, montage50):
        clustered = horizontal_clustering(montage50, group_size=3)
        assert clustered.n_original == 50
        clustered.workflow.validate()

    def test_group_size_one_is_identity_structure(self, diamond):
        clustered = horizontal_clustering(diamond, group_size=1)
        assert len(clustered.workflow) == 4
        assert clustered.workflow.edge_count == diamond.edge_count

    def test_runtime_conserved(self, montage50):
        clustered = horizontal_clustering(montage50, group_size=4)
        total = sum(ac.runtime for ac in clustered.workflow)
        original = sum(ac.runtime for ac in montage50)
        assert total == pytest.approx(original)

    def test_members_within_one_level(self, montage50):
        clustered = horizontal_clustering(montage50, group_size=4)
        level_of = {}
        for depth, level in enumerate(montage50.levels()):
            for node in level:
                level_of[node] = depth
        for ids in clustered.members.values():
            assert len({level_of[i] for i in ids}) == 1

    def test_reduces_node_count(self, montage50):
        clustered = horizontal_clustering(montage50, group_size=4)
        assert len(clustered.workflow) < 50

    def test_invalid_group_size(self, diamond):
        with pytest.raises(ValidationError):
            horizontal_clustering(diamond, group_size=0)


class TestVerticalClustering:
    def test_chain_collapses_to_one(self, chain):
        clustered = vertical_clustering(chain)
        assert len(clustered.workflow) == 1
        only = clustered.workflow.activations[0]
        assert only.runtime == pytest.approx(15.0)

    def test_diamond_keeps_branches(self, diamond):
        clustered = vertical_clustering(diamond)
        # 0 has two children, 3 has two parents: no chain merging possible
        assert len(clustered.workflow) == 4

    def test_montage_tail_chain_merges(self, montage50):
        # mAdd -> mShrink -> mJPEG is a single-parent/child chain
        clustered = vertical_clustering(montage50)
        merged_activities = {
            ac.activity for ac in clustered.workflow if "+" in ac.activity
        }
        assert any("mShrink" in a and "mJPEG" in a for a in merged_activities)

    def test_covers_all(self, montage50):
        clustered = vertical_clustering(montage50)
        assert clustered.n_original == 50


class TestClusterSemantics:
    def test_internal_files_hidden(self, chain, montage50):
        clustered = vertical_clustering(montage50)
        for cluster_id, ids in clustered.members.items():
            ac = clustered.workflow.activation(cluster_id)
            produced_inside = {
                f.name
                for i in ids
                for f in montage50.activation(i).outputs
            }
            for f in ac.inputs:
                assert f.name not in produced_inside

    def test_cluster_of(self, montage50):
        clustered = horizontal_clustering(montage50, group_size=3)
        for cluster_id, ids in clustered.members.items():
            for original in ids:
                assert clustered.cluster_of(original) == cluster_id
        with pytest.raises(ValidationError):
            clustered.cluster_of(9999)

    def test_expand_plan(self, montage50, fleet16):
        clustered = horizontal_clustering(montage50, group_size=3)
        plan = HeftScheduler().plan(clustered.workflow, fleet16)
        expanded = clustered.expand(plan)
        expanded.validate_against(montage50, fleet16)
        # cluster members share the cluster's VM
        for cluster_id, ids in clustered.members.items():
            for original in ids:
                assert expanded.vm_of(original) == plan.vm_of(cluster_id)

    def test_expanded_plan_executes(self, montage50, fleet16):
        clustered = horizontal_clustering(montage50, group_size=3)
        plan = HeftScheduler().plan(clustered.workflow, fleet16)
        expanded = clustered.expand(plan)
        result = WorkflowSimulator(
            montage50, fleet16, PlanFollowingScheduler(expanded),
            network=ZeroCostNetwork(),
        ).run()
        assert result.succeeded

    def test_clustered_dag_simulatable(self, montage50, fleet16):
        clustered = vertical_clustering(montage50)
        result = WorkflowSimulator(
            clustered.workflow, fleet16,
            HeftScheduler().as_online(clustered.workflow, fleet16),
            network=ZeroCostNetwork(),
        ).run()
        assert result.succeeded


class TestHost:
    def test_capacity_tracking(self):
        host = Host(0, pcpus=16, ram_gb=64.0)
        vm = Vm(0, VM_TYPES["t2.2xlarge"])
        assert host.fits(vm)
        host.place(vm)
        assert host.used_pcpus == 8
        assert host.used_ram_gb == 32.0

    def test_overfill_rejected(self):
        host = Host(0, pcpus=8, ram_gb=64.0)
        host.place(Vm(0, VM_TYPES["t2.2xlarge"]))
        with pytest.raises(ValidationError):
            host.place(Vm(1, VM_TYPES["t2.micro"]))

    def test_ram_constraint(self):
        host = Host(0, pcpus=64, ram_gb=1.5)
        host.place(Vm(0, VM_TYPES["t2.micro"]))  # 1 GB
        with pytest.raises(ValidationError):
            host.place(Vm(1, VM_TYPES["t2.micro"]))

    def test_remove(self):
        host = Host(0, pcpus=8, ram_gb=64.0)
        host.place(Vm(3, VM_TYPES["t2.micro"]))
        removed = host.remove(3)
        assert removed.id == 3 and host.used_pcpus == 0
        with pytest.raises(ValidationError):
            host.remove(3)


class TestHostPool:
    def _hosts(self):
        return [Host(i, pcpus=16, ram_gb=64.0) for i in range(3)]

    def test_first_fit_fills_in_order(self):
        pool = HostPool(self._hosts(), policy="first-fit")
        fleet = t2_fleet(4, 0)
        placement = pool.place_fleet(fleet)
        assert set(placement.values()) == {0}  # all fit on host 0

    def test_best_fit_packs_tightest(self):
        hosts = [Host(0, pcpus=16, ram_gb=64.0), Host(1, pcpus=9, ram_gb=64.0)]
        pool = HostPool(hosts, policy="best-fit")
        pool.place(Vm(0, VM_TYPES["t2.2xlarge"]))
        # host 1 (9 pcpus) has less slack than host 0 (16)
        assert pool.host_of(0).id == 1

    def test_fleet_placement_respects_capacity(self):
        pool = HostPool(self._hosts())
        fleet = t2_fleet(8, 1)  # 16 vCPUs over three 16-pcpu hosts
        pool.place_fleet(fleet)
        for host in pool.hosts:
            assert host.used_pcpus <= host.pcpus

    def test_no_room_rejected(self):
        pool = HostPool([Host(0, pcpus=1, ram_gb=1.0)])
        pool.place(Vm(0, VM_TYPES["t2.micro"]))
        with pytest.raises(ValidationError):
            pool.place(Vm(1, VM_TYPES["t2.micro"]))

    def test_double_place_rejected(self):
        pool = HostPool(self._hosts())
        vm = Vm(0, VM_TYPES["t2.micro"])
        pool.place(vm)
        with pytest.raises(ValidationError):
            pool.place(vm)

    def test_unknown_policy(self):
        with pytest.raises(ValidationError):
            HostPool(self._hosts(), policy="random")


class TestHostFailure:
    def test_failure_revokes_resident_vms(self, montage25):
        hosts = [Host(0, pcpus=8, ram_gb=32.0), Host(1, pcpus=16, ram_gb=64.0)]
        pool = HostPool(hosts)
        fleet = t2_fleet(4, 1)
        pool.place_fleet(fleet)
        victim_host = pool.host_of(fleet[-1].id).id  # where the 2xlarge sits
        revocations = host_failure_revocations(pool, victim_host, at=20.0)
        assert revocations
        assert all(r.time == 20.0 for r in revocations)
        resident = {vm.id for vm in pool.vms_on(victim_host)}
        assert {r.vm_id for r in revocations} == resident

        # the correlated failure plugs into the simulator
        from repro.schedulers import GreedyOnlineScheduler
        from tests.test_sim_spot import FixedRevocations

        result = WorkflowSimulator(
            montage25, fleet, GreedyOnlineScheduler(),
            network=ZeroCostNetwork(),
            revocations=FixedRevocations(revocations),
        ).run()
        assert result.succeeded
        late_vms = {
            r.vm_id for r in result.records if r.start_time >= 20.0
        }
        assert late_vms.isdisjoint(resident)


from hypothesis import given, settings, strategies as st

from repro.dag import random_layered_dag


class TestClusteringProperties:
    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=2, max_value=40),
           group=st.integers(min_value=1, max_value=6),
           seed=st.integers(min_value=0, max_value=500))
    def test_horizontal_invariants(self, n, group, seed):
        wf = random_layered_dag(n, seed=seed)
        clustered = horizontal_clustering(wf, group_size=group)
        clustered.workflow.validate()  # acyclic
        assert clustered.n_original == n  # covers everything exactly once
        # runtime conserved
        assert sum(ac.runtime for ac in clustered.workflow) == pytest.approx(
            sum(ac.runtime for ac in wf)
        )
        # every original edge is preserved or internalized
        for parent, child in wf.edges:
            cp = clustered.cluster_of(parent)
            cc = clustered.cluster_of(child)
            if cp != cc:
                assert cc in clustered.workflow.children(cp)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=2, max_value=40),
           seed=st.integers(min_value=0, max_value=500))
    def test_vertical_invariants(self, n, seed):
        wf = random_layered_dag(n, seed=seed)
        clustered = vertical_clustering(wf)
        clustered.workflow.validate()
        assert clustered.n_original == n
        assert len(clustered.workflow) <= n
        # merged chains really were chains: each cluster's members form a
        # path in the original DAG
        for ids in clustered.members.values():
            ordered = sorted(ids, key=wf.topological_order().index)
            for a, b in zip(ordered, ordered[1:]):
                assert b in wf.children(a)
