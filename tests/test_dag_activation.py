"""Tests for repro.dag.activation — the activation state machine and files."""

import pytest

from repro.dag import Activation, ActivationState, File
from repro.util.validate import ValidationError

from tests.conftest import make_activation


class TestFile:
    def test_basic(self):
        f = File("a.fits", 4.2e6)
        assert f.size_mb == pytest.approx(4.2)

    def test_zero_size_ok(self):
        assert File("empty", 0).size_bytes == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            File("bad", -1)

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            File("", 1)

    def test_frozen(self):
        f = File("a", 1)
        with pytest.raises(AttributeError):
            f.size_bytes = 2  # type: ignore[misc]

    def test_hashable_and_equal(self):
        assert File("a", 1) == File("a", 1)
        assert len({File("a", 1), File("a", 1)}) == 1


class TestActivationConstruction:
    def test_starts_locked(self):
        assert make_activation(0).state is ActivationState.LOCKED

    def test_rejects_negative_id(self):
        with pytest.raises(ValidationError):
            make_activation(-1)

    def test_rejects_empty_activity(self):
        with pytest.raises(ValidationError):
            Activation(id=0, activity="", runtime=1.0)

    def test_rejects_nonpositive_runtime(self):
        with pytest.raises(ValidationError):
            make_activation(0, runtime=0.0)
        with pytest.raises(ValidationError):
            make_activation(0, runtime=-2.0)

    def test_rejects_duplicate_outputs(self):
        f = File("x", 1)
        with pytest.raises(ValidationError):
            make_activation(0, outputs=[f, File("x", 2)])

    def test_io_byte_totals(self):
        ac = make_activation(
            0, inputs=[File("a", 10), File("b", 20)], outputs=[File("c", 5)]
        )
        assert ac.input_bytes == 30
        assert ac.output_bytes == 5

    def test_produces_consumes(self):
        ac = make_activation(0, inputs=[File("in", 1)], outputs=[File("out", 1)])
        assert ac.consumes("in") and not ac.consumes("out")
        assert ac.produces("out") and not ac.produces("in")
        assert ac.output_file("out").name == "out"
        assert ac.output_file("nope") is None


class TestStateMachine:
    def test_happy_path(self):
        ac = make_activation(0)
        ac.transition(ActivationState.READY)
        ac.transition(ActivationState.RUNNING)
        ac.transition(ActivationState.FINISHED)
        assert ac.state.terminal

    def test_failure_from_running(self):
        ac = make_activation(0)
        ac.transition(ActivationState.READY)
        ac.transition(ActivationState.RUNNING)
        ac.transition(ActivationState.FAILED)
        assert ac.state is ActivationState.FAILED

    def test_failure_from_locked(self):
        # cascaded failure of a never-runnable descendant
        ac = make_activation(0)
        ac.transition(ActivationState.FAILED)
        assert ac.state.terminal

    def test_retry_running_to_ready(self):
        ac = make_activation(0)
        ac.transition(ActivationState.READY)
        ac.transition(ActivationState.RUNNING)
        ac.transition(ActivationState.READY)  # re-queued after VM failure
        assert ac.state is ActivationState.READY

    def test_locked_cannot_run_directly(self):
        ac = make_activation(0)
        with pytest.raises(ValidationError):
            ac.transition(ActivationState.RUNNING)

    def test_terminal_states_are_final(self):
        ac = make_activation(0)
        ac.transition(ActivationState.READY)
        ac.transition(ActivationState.RUNNING)
        ac.transition(ActivationState.FINISHED)
        for target in ActivationState:
            with pytest.raises(ValidationError):
                ac.transition(target)

    def test_reset_returns_to_locked(self):
        ac = make_activation(0)
        ac.transition(ActivationState.READY)
        ac.reset()
        assert ac.state is ActivationState.LOCKED

    def test_terminal_property(self):
        assert ActivationState.FINISHED.terminal
        assert ActivationState.FAILED.terminal
        assert not ActivationState.READY.terminal
        assert not ActivationState.LOCKED.terminal
        assert not ActivationState.RUNNING.terminal

    def test_paper_state_values(self):
        # the five states of §III-A, with the paper's wording
        assert ActivationState.FINISHED.value == "successfully finished"
        assert ActivationState.FAILED.value == "finished with a failure"
        assert {s.value for s in ActivationState} == {
            "ready", "locked", "running",
            "successfully finished", "finished with a failure",
        }
