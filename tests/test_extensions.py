"""Tests for the extension modules: LocalityScheduler, QLambdaAgent,
random_layered_dag and the characterization/robustness experiments."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.dag import random_layered_dag
from repro.experiments.ablations import run_noise_robustness, run_revocation_ablation
from repro.experiments.characterization import (
    render_characterization,
    run_characterization,
)
from repro.rl import EpsilonGreedyPolicy, QLambdaAgent, QLearningAgent
from repro.schedulers import GreedyOnlineScheduler, LocalityScheduler
from repro.sim import SharedStorageNetwork, WorkflowSimulator, t2_fleet
from repro.util.validate import ValidationError
from repro.workflows import cybershake, montage

from tests.test_rl_agents import ChainEnv, TwoArmBandit


class TestLocalityScheduler:
    def test_completes_workflow(self, montage25, fleet16):
        result = WorkflowSimulator(
            montage25, fleet16, LocalityScheduler(),
            network=SharedStorageNetwork(),
        ).run()
        assert result.succeeded
        assert len(result.records) == 25

    def test_moves_fewer_bytes_than_greedy(self, fleet16):
        # CyberShake is the data-heavy workload; locality should cut the
        # time spent staging relative to the compute-oriented greedy.
        wf = cybershake(30, seed=2)

        def total_staging(scheduler):
            result = WorkflowSimulator(
                wf, fleet16, scheduler, network=SharedStorageNetwork(),
            ).run()
            return sum(r.stage_in_time for r in result.records)

        local = total_staging(LocalityScheduler(locality_weight=1.0))
        greedy = total_staging(GreedyOnlineScheduler())
        assert local <= greedy

    def test_zero_weight_is_valid(self, montage25, fleet16):
        result = WorkflowSimulator(
            montage25, fleet16, LocalityScheduler(locality_weight=0.0),
            network=SharedStorageNetwork(),
        ).run()
        assert result.succeeded

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            LocalityScheduler(locality_weight=-1.0)


class TestQLambda:
    def test_learns_bandit(self):
        agent = QLambdaAgent(alpha=0.5, gamma=1.0, lam=0.5, seed=1)
        agent.train(TwoArmBandit(), episodes=100)
        assert agent.greedy_action("s", ["good", "bad"]) == "good"

    def test_learns_chain_faster_than_one_step(self):
        """Traces propagate terminal reward along the chain in far fewer
        episodes than one-step Q-learning."""
        budget = 40

        def final_q(agent_cls, **kw):
            agent = agent_cls(alpha=0.4, gamma=0.9, discount_power=False,
                              policy=EpsilonGreedyPolicy(
                                  0.3, epsilon_is_exploration=True),
                              seed=7, **kw)
            agent.train(ChainEnv(8), episodes=budget)
            return agent.qtable.value(0, "right")

        q_lambda = final_q(QLambdaAgent, lam=0.9)
        q_one = final_q(QLearningAgent)
        assert q_lambda > q_one

    def test_lambda_zero_behaves_like_q_learning(self):
        agent = QLambdaAgent(alpha=0.5, gamma=0.9, lam=0.0, seed=3,
                             discount_power=False)
        agent.train(ChainEnv(4), episodes=200)
        assert all(
            agent.greedy_action(s, ["left", "right"]) == "right"
            for s in range(4)
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            QLambdaAgent(lam=1.5)
        with pytest.raises(ValidationError):
            QLambdaAgent(trace_floor=0.0)


class TestRandomDag:
    def test_exact_size_and_validity(self):
        wf = random_layered_dag(37, seed=5)
        assert len(wf) == 37
        wf.validate()

    def test_deterministic(self):
        a = random_layered_dag(30, seed=9)
        b = random_layered_dag(30, seed=9)
        assert a.edges == b.edges
        assert [x.runtime for x in a.activations] == [
            x.runtime for x in b.activations
        ]

    def test_layer_connectivity(self):
        wf = random_layered_dag(40, n_layers=5, seed=1)
        levels = wf.levels()
        # every non-entry node has at least one parent
        entries = set(wf.entries())
        for ac in wf:
            if ac.id not in entries:
                assert wf.parents(ac.id)

    def test_single_node(self):
        wf = random_layered_dag(1, seed=0)
        assert len(wf) == 1 and wf.edge_count == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            random_layered_dag(0)
        with pytest.raises(ValidationError):
            random_layered_dag(10, edge_density=1.5)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=1, max_value=60),
           density=st.floats(min_value=0.0, max_value=1.0),
           seed=st.integers(min_value=0, max_value=999))
    def test_property_valid_dags(self, n, density, seed):
        wf = random_layered_dag(n, edge_density=density, seed=seed)
        assert len(wf) == n
        wf.validate()

    def test_simulatable(self, fleet_small):
        wf = random_layered_dag(30, seed=2)
        result = WorkflowSimulator(
            wf, fleet_small, GreedyOnlineScheduler()
        ).run()
        assert result.succeeded


class TestCharacterization:
    def test_default_rows(self):
        rows = run_characterization(seed=0)
        assert len(rows) == 7
        assert rows[0][0] == "montage-25"

    def test_render(self):
        text = render_characterization(run_characterization(seed=0))
        assert "characterization" in text.lower()
        assert "montage-50" in text

    def test_custom_sizes(self):
        rows = run_characterization(seed=1, sizes=(("sipht", 20),))
        assert rows[0][0] == "sipht-20"


class TestRobustnessAblations:
    def test_noise_rows(self):
        rows = run_noise_robustness(episodes=3, seed=2)
        assert [r[0] for r in rows] == ["calm", "default", "stormy"]
        assert all(r[1] > 0 and r[2] > 0 for r in rows)

    def test_revocation_outcomes(self):
        rows = run_revocation_ablation(seed=2)
        outcomes = {s: o for s, o, _ in rows}
        assert outcomes["HEFT (static plan)"] == "deadlocked"
        assert outcomes["Greedy online"] == "successfully finished"
        makespans = {s: m for s, _, m in rows}
        assert math.isinf(makespans["HEFT (static plan)"])
