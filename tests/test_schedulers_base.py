"""Tests for scheduler interfaces: plans, plan-following, estimates."""

import pytest

from repro.schedulers import (
    EstimateModel,
    HeftScheduler,
    PlanFollowingScheduler,
    SchedulingPlan,
)
from repro.sim import WorkflowSimulator, ZeroCostNetwork, t2_fleet
from repro.sim.vm import VM_TYPES, Vm
from repro.util.validate import ValidationError

from tests.conftest import make_activation


class TestSchedulingPlan:
    def test_default_priority(self):
        plan = SchedulingPlan(assignment={2: 0, 0: 1, 1: 0})
        assert plan.priority == [0, 1, 2]

    def test_priority_must_be_permutation(self):
        with pytest.raises(ValidationError):
            SchedulingPlan(assignment={0: 0, 1: 0}, priority=[0])
        with pytest.raises(ValidationError):
            SchedulingPlan(assignment={0: 0}, priority=[0, 1])

    def test_vm_of(self):
        plan = SchedulingPlan(assignment={0: 3})
        assert plan.vm_of(0) == 3
        with pytest.raises(ValidationError):
            plan.vm_of(99)

    def test_activations_on_respects_priority(self):
        plan = SchedulingPlan(
            assignment={0: 1, 1: 1, 2: 1}, priority=[2, 0, 1]
        )
        assert plan.activations_on(1) == [2, 0, 1]
        assert plan.activations_on(99) == []

    def test_json_round_trip(self):
        plan = SchedulingPlan(
            assignment={0: 1, 1: 8}, priority=[1, 0], name="HEFT"
        )
        back = SchedulingPlan.from_json(plan.to_json())
        assert back.assignment == plan.assignment
        assert back.priority == plan.priority
        assert back.name == "HEFT"

    def test_malformed_json(self):
        with pytest.raises(ValidationError):
            SchedulingPlan.from_json("{not json")

    def test_validate_against(self, diamond, fleet_small):
        plan = SchedulingPlan(assignment={i: 0 for i in range(4)})
        plan.validate_against(diamond, fleet_small)
        bad_vm = SchedulingPlan(assignment={i: 42 for i in range(4)})
        with pytest.raises(ValidationError):
            bad_vm.validate_against(diamond, fleet_small)
        missing = SchedulingPlan(assignment={0: 0})
        with pytest.raises(ValidationError):
            missing.validate_against(diamond, fleet_small)


class TestPlanFollowing:
    def test_executes_exact_assignment(self, montage25, fleet16):
        plan = HeftScheduler().plan(montage25, fleet16)
        sim = WorkflowSimulator(
            montage25, fleet16, PlanFollowingScheduler(plan),
            network=ZeroCostNetwork(),
        )
        result = sim.run()
        assert result.succeeded
        assert result.assignment == plan.assignment

    def test_waits_for_planned_vm(self, fork_join):
        # everything planned on VM 0 (1 slot) while VM 1 stays idle
        vms = [Vm(0, VM_TYPES["t2.micro"]), Vm(1, VM_TYPES["t2.micro"])]
        plan = SchedulingPlan(assignment={i: 0 for i in range(8)})
        sim = WorkflowSimulator(
            fork_join, vms, PlanFollowingScheduler(plan),
            network=ZeroCostNetwork(),
        )
        result = sim.run()
        assert result.succeeded
        assert set(result.assignment.values()) == {0}
        # fully serial: 3 + 6*10 + 3
        assert result.makespan == pytest.approx(66.0)

    def test_mismatched_plan_rejected_at_start(self, diamond, fleet_small):
        plan = SchedulingPlan(assignment={0: 0})
        sim = WorkflowSimulator(
            diamond, fleet_small, PlanFollowingScheduler(plan),
            network=ZeroCostNetwork(),
        )
        with pytest.raises(ValidationError):
            sim.run()


class TestEstimateModel:
    def test_compute_time(self):
        est = EstimateModel()
        vm = Vm(0, VM_TYPES["t2.micro"])
        ac = make_activation(0, runtime=10.0)
        assert est.compute_time(ac, vm) == pytest.approx(10.0)

    def test_stage_in_skips_colocated_producer(self, data_diamond, fleet_small):
        est = EstimateModel(latency=0.0)
        data_diamond.infer_data_dependencies()
        vm = fleet_small[0]
        consumer = data_diamond.activation(1)  # consumes a.dat from node 0
        with_producer_here = est.stage_in_time(
            consumer, vm, {0: vm.id}, data_diamond
        )
        with_producer_elsewhere = est.stage_in_time(
            consumer, vm, {0: 99}, data_diamond
        )
        assert with_producer_here == 0.0
        assert with_producer_elsewhere > 0.0

    def test_total_time_sums(self, data_diamond, fleet_small):
        est = EstimateModel()
        data_diamond.infer_data_dependencies()
        ac = data_diamond.activation(1)
        vm = fleet_small[0]
        total = est.total_time(ac, vm, {}, data_diamond)
        parts = (
            est.stage_in_time(ac, vm, {}, data_diamond)
            + est.compute_time(ac, vm)
            + est.stage_out_time(ac, vm)
        )
        assert total == pytest.approx(parts)

    def test_upload_outputs_toggle(self, data_diamond, fleet_small):
        ac = data_diamond.activation(0)
        vm = fleet_small[0]
        assert EstimateModel(upload_outputs=False).stage_out_time(ac, vm) == 0.0
        assert EstimateModel().stage_out_time(ac, vm) > 0.0
