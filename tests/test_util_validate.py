"""Tests for repro.util.validate — parameter validation helpers."""

import pytest

from repro.util.validate import (
    ValidationError,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2) == 2.0
        assert isinstance(check_positive("x", 2), float)

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match="x"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive("x", -1.5)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValidationError):
            check_positive("x", float("nan"))
        with pytest.raises(ValidationError):
            check_positive("x", float("inf"))

    def test_rejects_non_number(self):
        with pytest.raises(ValidationError):
            check_positive("x", "3")
        with pytest.raises(ValidationError):
            check_positive("x", True)  # bool is not a number here


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative("x", -0.001)


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, p):
        assert check_probability("p", p) == p

    @pytest.mark.parametrize("p", [-0.01, 1.01, 5])
    def test_rejects_out_of_range(self, p):
        with pytest.raises(ValidationError):
            check_probability("p", p)

    def test_error_message_names_parameter(self):
        with pytest.raises(ValidationError, match="epsilon"):
            check_probability("epsilon", 2.0)


class TestValidationError:
    def test_is_value_error(self):
        # callers can catch either
        assert issubclass(ValidationError, ValueError)
