"""Pinned seed-derivation vectors — the determinism contract, frozen.

Every parallel feature in this tree (worker pools, batched lanes,
distributed actors) leans on the same stateless sha256 derivations:
:func:`repro.util.rng.derive_seed` for namespaced child seeds,
:func:`repro.runner.parallel.task_seed` for per-task seeds, and
``RngService.spawn_seed`` for episode streams.  Bit-identical results
across worker/actor/batch counts hold **only** while these functions
return exactly what they returned when the golden artifacts
(``results/BENCH_*.json`` fingerprints, plan goldens, the distributed
engine's actor interleave) were frozen.

These vectors pin the outputs to literal values.  If any assertion here
fails, the derivation changed — every frozen artifact and cross-process
reproducibility claim in the repository is void, and the change must be
reverted (or every golden regenerated and the break called out loudly).
"""

from repro.runner.parallel import task_seed
from repro.util.rng import RngService, derive_seed

#: (root_seed, name) -> derive_seed(root_seed, name)
DERIVE_SEED_VECTORS = {
    (0, "actor-interleave"): 6653388476772669241,
    (1, "actor-episode:0"): 958593799341694657,
    (1, "actor-episode:7"): 1573882340469010161,
    (42, "task:x"): 5206874548063706234,
    (123456789, "episode"): 4794139152587123073,
    (5, "actor-interleave"): 2088698925016649460,
}

#: (root_seed, run_id, task_key) -> task_seed(...)
TASK_SEED_VECTORS = {
    (0, "distributed-learn:0", ("episode", 0)): 798358583069273057,
    (1, "paper-sweep:montage-50", (16, 0.5, 1.0, 0.1)): 431734787101292088,
    (7, "ensemble:4x25:16", ("member", 3)): 3450899504139839715,
}

#: RngService(1).spawn_seed("episode:i") for i in 0..2 — the per-episode
#: environment seeds every learning engine derives.
EPISODE_SPAWN_VECTORS = [
    7773001449826032891,
    1719187160671691924,
    1631016480423295652,
]

#: The distributed engine's fixed actor->episode interleave for
#: seed=5, n_actors=4 (see repro.core.distributed.learn_distributed).
ACTOR_INTERLEAVE_SEED5_N4 = [3, 2, 1, 0]


def test_derive_seed_pinned():
    for (root, name), expected in DERIVE_SEED_VECTORS.items():
        assert derive_seed(root, name) == expected, (root, name)


def test_derive_seed_range_and_stability():
    for (root, name), expected in DERIVE_SEED_VECTORS.items():
        # stateless: repeated calls agree, and values fit a 63-bit seed
        assert derive_seed(root, name) == derive_seed(root, name)
        assert 0 <= expected < 2**63


def test_task_seed_pinned():
    for (root, run_id, key), expected in TASK_SEED_VECTORS.items():
        assert task_seed(root, run_id, key) == expected, (root, run_id, key)


def test_episode_spawn_seeds_pinned():
    rng = RngService(1)
    got = [rng.spawn_seed(f"episode:{i}") for i in range(3)]
    assert got == EPISODE_SPAWN_VECTORS
    # spawn_seed is stateless in the service root: a fresh service
    # yields the same streams in any order
    fresh = RngService(1)
    assert fresh.spawn_seed("episode:2") == EPISODE_SPAWN_VECTORS[2]
    assert fresh.spawn_seed("episode:0") == EPISODE_SPAWN_VECTORS[0]


def test_actor_interleave_pinned():
    perm = (
        RngService(derive_seed(5, "actor-interleave"))
        .stream("actor-interleave")
        .permutation(4)
    )
    assert [int(x) for x in perm] == ACTOR_INTERLEAVE_SEED5_N4
