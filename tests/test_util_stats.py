"""Tests for repro.util.stats — Welford accumulators."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import RunningStats, welford_merge

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0
        assert s.std == 0.0

    def test_single_value(self):
        s = RunningStats()
        s.push(4.2)
        assert s.count == 1
        assert s.mean == pytest.approx(4.2)
        assert s.variance == 0.0

    def test_known_values(self):
        s = RunningStats()
        s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert s.mean == pytest.approx(5.0)
        assert s.std == pytest.approx(2.0)  # classic example

    def test_min_max(self):
        s = RunningStats()
        s.extend([3.0, -1.0, 7.0])
        assert s.minimum == -1.0
        assert s.maximum == 7.0

    def test_min_max_empty_raises(self):
        with pytest.raises(ValueError):
            RunningStats().minimum
        with pytest.raises(ValueError):
            RunningStats().maximum

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            RunningStats().push(float("nan"))

    def test_sample_variance(self):
        s = RunningStats()
        s.extend([1.0, 2.0, 3.0])
        assert s.sample_variance == pytest.approx(1.0)
        assert s.variance == pytest.approx(2.0 / 3.0)

    def test_copy_is_independent(self):
        s = RunningStats()
        s.extend([1.0, 2.0])
        c = s.copy()
        c.push(100.0)
        assert s.count == 2
        assert c.count == 3

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_matches_numpy(self, xs):
        s = RunningStats()
        s.extend(xs)
        assert s.mean == pytest.approx(float(np.mean(xs)), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(float(np.var(xs)), rel=1e-6, abs=1e-4)

    @given(st.lists(finite_floats, min_size=0, max_size=100),
           st.lists(finite_floats, min_size=0, max_size=100))
    def test_merge_equals_concatenation(self, xs, ys):
        a, b, c = RunningStats(), RunningStats(), RunningStats()
        a.extend(xs)
        b.extend(ys)
        c.extend(xs + ys)
        merged = welford_merge(a, b)
        assert merged.count == c.count
        if c.count:
            assert merged.mean == pytest.approx(c.mean, rel=1e-9, abs=1e-6)
            assert merged.variance == pytest.approx(c.variance, rel=1e-6, abs=1e-4)


class TestWelfordMerge:
    def test_merge_with_empty(self):
        a = RunningStats()
        a.extend([1.0, 2.0, 3.0])
        empty = RunningStats()
        assert welford_merge(a, empty).mean == pytest.approx(2.0)
        assert welford_merge(empty, a).mean == pytest.approx(2.0)

    def test_merge_two_empty(self):
        m = welford_merge(RunningStats(), RunningStats())
        assert m.count == 0

    def test_merge_preserves_min_max(self):
        a, b = RunningStats(), RunningStats()
        a.extend([5.0, 6.0])
        b.extend([-2.0, 3.0])
        m = welford_merge(a, b)
        assert m.minimum == -2.0
        assert m.maximum == 6.0

    def test_merge_does_not_mutate_inputs(self):
        a, b = RunningStats(), RunningStats()
        a.push(1.0)
        b.push(2.0)
        welford_merge(a, b)
        assert a.count == 1 and b.count == 1
