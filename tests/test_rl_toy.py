"""Tests for the reference environments + classic agent behaviours on them."""

import pytest

from repro.rl import (
    ChainEnv,
    CliffWalk,
    EpsilonGreedyPolicy,
    GridWorld,
    QLearningAgent,
    SarsaAgent,
    TwoArmBandit,
)
from repro.util.validate import ValidationError


class TestGridWorld:
    def test_reachable_goal(self):
        env = GridWorld(3, 3)
        state = env.reset()
        total = 0.0
        for move in ("right", "right", "down", "down"):
            state, r, done = env.step(move)
            total += r
        assert done and state == (2, 2)
        assert total == pytest.approx(20.0 - 3.0)

    def test_walls_clamp(self):
        env = GridWorld(3, 3)
        env.reset()
        state, _, _ = env.step("up")
        assert state == (0, 0)
        state, _, _ = env.step("left")
        assert state == (0, 0)

    def test_goal_is_terminal(self):
        env = GridWorld(2, 2)
        assert env.actions((1, 1)) == []

    def test_q_learning_solves(self):
        env = GridWorld(4, 4)
        agent = QLearningAgent(alpha=0.5, gamma=0.95, discount_power=False,
                               policy=EpsilonGreedyPolicy(0.2), seed=3)
        agent.train(env, episodes=400)
        # follow the greedy policy from the start; must reach the goal fast
        state = env.reset()
        for _ in range(12):
            actions = env.actions(state)
            if not actions:
                break
            state, _, done = env.step(agent.greedy_action(state, actions))
            if done:
                break
        assert state == env.goal

    def test_validation(self):
        with pytest.raises(ValidationError):
            GridWorld(1, 5)


class TestCliffWalk:
    def test_cliff_resets_position(self):
        env = CliffWalk(6)
        env.reset()
        state, reward, done = env.step("right")  # walks straight off
        assert reward == -100.0 and not done
        assert state == (0, env.height - 1)

    def test_safe_path_exists(self):
        env = CliffWalk(4)
        env.reset()
        total = 0.0
        for move in ("up", "right", "right", "right", "down"):
            state, r, done = env.step(move)
            total += r
        assert done and state == env.goal
        assert total == pytest.approx(-4.0)

    @pytest.mark.parametrize("agent_cls", [QLearningAgent, SarsaAgent])
    def test_agents_learn_a_safe_route(self, agent_cls):
        """Both agents' greedy policies must reach the goal without ever
        stepping off the cliff."""
        env = CliffWalk(5)
        agent = agent_cls(alpha=0.4, gamma=0.95, discount_power=False,
                          policy=EpsilonGreedyPolicy(
                              0.15, epsilon_is_exploration=True),
                          seed=11, max_steps=2000)
        agent.train(env, episodes=600)
        state = env.reset()
        steps = 0
        while env.actions(state) and steps < 4 * env.width:
            action = agent.greedy_action(state, env.actions(state))
            state, reward, done = env.step(action)
            assert reward > -100.0, "greedy policy fell off the cliff"
            steps += 1
            if done:
                break
        assert state == env.goal

    def test_qlearning_greedy_path_is_optimal_length(self):
        """Q-learning converges to the shortest (edge-hugging) route:
        up, rights along the row above the cliff, down."""
        env = CliffWalk(5)
        agent = QLearningAgent(alpha=0.4, gamma=0.95, discount_power=False,
                               policy=EpsilonGreedyPolicy(
                                   0.15, epsilon_is_exploration=True),
                               seed=11, max_steps=2000)
        agent.train(env, episodes=600)
        state = env.reset()
        total = 0.0
        for _ in range(4 * env.width):
            actions = env.actions(state)
            if not actions:
                break
            state, reward, _ = env.step(agent.greedy_action(state, actions))
            total += reward
        assert state == env.goal
        # optimal: (width + 1) moves, last one free -> -(width)
        assert total == pytest.approx(-float(env.width))

    def test_validation(self):
        with pytest.raises(ValidationError):
            CliffWalk(2)


class TestChainAndBandit:
    def test_chain_validation(self):
        with pytest.raises(ValidationError):
            ChainEnv(0)

    def test_bandit_terminal(self):
        env = TwoArmBandit()
        env.reset()
        state, reward, done = env.step("bad")
        assert done and reward == 0.2
        assert env.actions(state) == []

    def test_chain_optimal_return(self):
        env = ChainEnv(4)
        env.reset()
        total = 0.0
        for _ in range(4):
            _, r, done = env.step("right")
            total += r
        assert done
        assert total == pytest.approx(10.0 - 0.3)
