"""Tests for repro.sim.trace and repro.sim.metrics aggregates."""

import pytest

from repro.schedulers import FcfsScheduler
from repro.sim import WorkflowSimulator, ZeroCostNetwork, gantt_text
from repro.sim.metrics import ActivationRecord, SimulationResult
from repro.util.validate import ValidationError


@pytest.fixture
def result(montage25, fleet16):
    return WorkflowSimulator(
        montage25, fleet16, FcfsScheduler(), network=ZeroCostNetwork()
    ).run()


class TestActivationRecord:
    def test_derived_times(self):
        r = ActivationRecord(
            activation_id=0, activity="x", vm_id=0,
            ready_time=1.0, start_time=3.0, finish_time=10.0,
        )
        assert r.queue_time == pytest.approx(2.0)
        assert r.execution_time == pytest.approx(7.0)
        assert r.total_time == pytest.approx(9.0)

    def test_inconsistent_times_rejected(self):
        with pytest.raises(ValidationError):
            ActivationRecord(
                activation_id=0, activity="x", vm_id=0,
                ready_time=5.0, start_time=3.0, finish_time=10.0,
            )


class TestSimulationResult:
    def test_record_lookup(self, result):
        assert result.record(0).activation_id == 0
        with pytest.raises(ValidationError):
            result.record(999)

    def test_vm_usage(self, result, fleet16):
        usage = result.vm_usage()
        assert sum(u.n_activations for u in usage) == 25
        for u in usage:
            assert u.busy_time > 0
            assert 0 < u.utilization(result.makespan, 8) <= 1.0

    def test_cost_hourly(self, result):
        # < 1h run -> one hour of every VM in the fleet
        expected = 8 * 0.0116 + 1 * 0.3712
        assert result.cost() == pytest.approx(expected)

    def test_cost_per_second_cheaper(self, result):
        assert result.cost(per_second_billing=True) < result.cost()

    def test_mean_times(self, result):
        assert result.mean_execution_time > 0
        assert result.mean_queue_time >= 0

    def test_empty_result_means(self):
        empty = SimulationResult("w", [], 0.0, "successfully finished")
        assert empty.mean_execution_time == 0.0
        assert empty.mean_queue_time == 0.0


class TestGantt:
    def test_contains_all_vms(self, result):
        text = gantt_text(result)
        for vm_id in sorted({r.vm_id for r in result.records}):
            assert f"vm{vm_id}" in text

    def test_respects_width(self, result):
        text = gantt_text(result, width=60)
        body = [l for l in text.splitlines() if l.startswith(("vm", "    |"))]
        assert all(len(line) <= 70 for line in body)

    def test_empty_trace(self):
        empty = SimulationResult("w", [], 0.0, "successfully finished")
        assert gantt_text(empty) == "(empty trace)"

    def test_width_validated(self, result):
        with pytest.raises(ValueError):
            gantt_text(result, width=5)

    def test_makespan_in_header(self, result):
        assert f"{result.makespan:.2f}" in gantt_text(result).splitlines()[0]
