"""Golden-plan regression tests.

The fixtures under ``tests/golden/`` freeze two reference outputs:

- the deterministic HEFT plan for Montage-50 on the 16-vCPU fleet, and
- the plan a seeded ReASSIgN learner (α=0.5, γ=1.0, ε=0.1, 5 episodes,
  seed 1) converges to on the same instance, with its simulated
  makespan and simulated learning time.

Any drift in the scheduler, the simulator, the Q-learning update or the
seed plumbing shows up here as an exact-equality failure.  If a change
*intentionally* alters plans, regenerate the fixtures (see
``docs/runner.md``) and explain the change in the commit message.
"""

import json
import pathlib

import pytest

from repro.core.reassign import ReassignLearner, ReassignParams
from repro.experiments.environments import fleet_for
from repro.schedulers.heft import HeftScheduler
from repro.workflows.montage import montage

GOLDEN = pathlib.Path(__file__).parent / "golden"


def load(name):
    return (GOLDEN / name).read_text(encoding="utf-8")


class TestGoldenHeft:
    def test_montage50_heft_plan_exact(self):
        wf = montage(50, seed=1)
        plan = HeftScheduler().plan(wf, fleet_for(16))
        assert plan.to_json() + "\n" == load("montage50_heft_plan.json")

    def test_heft_is_input_deterministic(self):
        # HEFT has no random stream at all: two fresh constructions agree.
        a = HeftScheduler().plan(montage(50, seed=1), fleet_for(16))
        b = HeftScheduler().plan(montage(50, seed=1), fleet_for(16))
        assert a.to_json() == b.to_json()


class TestGoldenReassign:
    @pytest.fixture(scope="class")
    def learned(self):
        wf = montage(50, seed=1)
        params = ReassignParams(
            alpha=0.5, gamma=1.0, epsilon=0.1, episodes=5
        )
        return ReassignLearner(wf, fleet_for(16), params, seed=1).learn()

    def test_plan_exact(self, learned):
        assert learned.plan.to_json() + "\n" == load(
            "montage50_reassign_plan.json"
        )

    def test_scalars_exact(self, learned):
        meta = json.loads(load("montage50_reassign_meta.json"))
        # Exact float equality is intentional: same seed, same machine
        # arithmetic, same numbers — that is the determinism contract.
        assert learned.simulated_makespan == meta["simulated_makespan"]
        assert (
            learned.simulated_learning_time
            == meta["simulated_learning_time"]
        )
