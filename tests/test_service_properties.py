"""Hypothesis properties of the streaming scheduler service.

Four families of invariants, each quantified over generator-drawn
scenarios rather than hand-picked examples:

- **arrival laws** — Poisson schedules have non-negative, non-decreasing
  arrival times, respect both stop conditions, and are a pure function
  of the seed (same seed → identical schedule; the generator carries no
  hidden state between calls);
- **trace exactness** — any schedule survives the JSON round trip
  field-for-field, and replaying it through :class:`TraceArrivals`
  under the same service seed reproduces the live run's metrics JSON
  byte-for-byte;
- **fair-share non-starvation** — under the fair policy, every tenant
  that submitted jobs completes all of them, and no tenant's share of
  dispatch opportunities collapses to zero while it has pending work
  (operationalized as: each tenant's first dispatch happens before the
  fleet has fully drained every other tenant);
- **clock monotonicity** — per-job event times never regress even with
  many jobs interleaved on the shared fleet: dispatch ≥ ready ≥ admit ≥
  arrival, completion ≥ first dispatch, for every job record.

Full-service properties run tiny workloads (few jobs, small DAGs) so the
whole file stays in CI budget; the pure-arrival properties are cheap and
run with larger example counts.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.service import (
    PoissonArrivals,
    SchedulerService,
    ServiceConfig,
    TenantSpec,
    TraceArrivals,
    default_tenants,
    schedule_from_json,
    schedule_to_json,
)

pytestmark = pytest.mark.service

#: "cybershake" sizes that are small yet valid (the generator rejects 6).
_SMALL_SIZES = (5, 7, 8, 9)

seeds = st.integers(min_value=0, max_value=2**31 - 1)
rates = st.floats(min_value=0.001, max_value=5.0,
                  allow_nan=False, allow_infinity=False)


def _poisson(seed: int, rate: float, n_tenants: int, max_jobs: int,
             size: int = 5) -> PoissonArrivals:
    return PoissonArrivals(
        rate,
        default_tenants(n_tenants, "cybershake", size),
        seed=seed,
        max_jobs=max_jobs,
    )


class TestArrivalLaws:
    @settings(max_examples=50, deadline=None)
    @given(seed=seeds, rate=rates,
           n_tenants=st.integers(1, 5), max_jobs=st.integers(1, 40))
    def test_gaps_non_negative_and_sorted(self, seed, rate, n_tenants,
                                          max_jobs) -> None:
        jobs = _poisson(seed, rate, n_tenants, max_jobs).schedule()
        assert len(jobs) == max_jobs
        times = [j.arrival_time for j in jobs]
        assert all(t >= 0.0 for t in times)
        assert times == sorted(times)
        assert [j.job_id for j in jobs] == list(range(max_jobs))

    @settings(max_examples=50, deadline=None)
    @given(seed=seeds, rate=rates,
           n_tenants=st.integers(1, 5), max_jobs=st.integers(1, 40))
    def test_seed_determinism(self, seed, rate, n_tenants,
                              max_jobs) -> None:
        first = _poisson(seed, rate, n_tenants, max_jobs).schedule()
        again = _poisson(seed, rate, n_tenants, max_jobs).schedule()
        assert first == again
        # and schedule() itself is stateless / repeatable on one instance
        gen = _poisson(seed, rate, n_tenants, max_jobs)
        assert gen.schedule() == gen.schedule() == first

    @settings(max_examples=50, deadline=None)
    @given(seed=seeds, rate=rates, horizon=st.floats(1.0, 500.0))
    def test_max_time_respected(self, seed, rate, horizon) -> None:
        jobs = PoissonArrivals(
            rate, default_tenants(2, "cybershake", 5),
            seed=seed, max_time=horizon,
        ).schedule()
        assert all(j.arrival_time <= horizon for j in jobs)

    @settings(max_examples=50, deadline=None)
    @given(seed=seeds, max_jobs=st.integers(1, 60))
    def test_tenants_drawn_from_population(self, seed, max_jobs) -> None:
        tenants = default_tenants(3, "cybershake", 5)
        jobs = PoissonArrivals(
            1.0, tenants, seed=seed, max_jobs=max_jobs
        ).schedule()
        names = {t.name for t in tenants}
        assert {j.tenant for j in jobs} <= names
        assert all(j.workflow == "cybershake" and j.size == 5 for j in jobs)

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds, rel=st.floats(1.0, 1e4))
    def test_relative_deadlines_stamped(self, seed, rel) -> None:
        jobs = PoissonArrivals(
            0.5, default_tenants(2, "cybershake", 5, rel),
            seed=seed, max_jobs=10,
        ).schedule()
        for j in jobs:
            assert j.deadline == j.arrival_time + rel


class TestTraceExactness:
    @settings(max_examples=50, deadline=None)
    @given(seed=seeds, rate=rates,
           n_tenants=st.integers(1, 4), max_jobs=st.integers(1, 30),
           rel=st.one_of(st.none(), st.floats(1.0, 1e4)))
    def test_json_round_trip_exact(self, seed, rate, n_tenants,
                                   max_jobs, rel) -> None:
        jobs = PoissonArrivals(
            rate, default_tenants(n_tenants, "cybershake", 5, rel),
            seed=seed, max_jobs=max_jobs,
        ).schedule()
        text = schedule_to_json(jobs)
        assert schedule_from_json(text) == jobs
        # idempotent: serializing the round-tripped jobs is byte-stable
        assert schedule_to_json(schedule_from_json(text)) == text

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000),
           size=st.sampled_from(_SMALL_SIZES),
           n_jobs=st.integers(2, 5))
    def test_trace_replay_reproduces_run(self, seed, size, n_jobs) -> None:
        arrivals = _poisson(seed, 0.05, 2, n_jobs, size=size)
        config = ServiceConfig(vcpus=16)
        live = SchedulerService(arrivals, config, seed=seed).run()
        replay = SchedulerService(
            TraceArrivals(arrivals.schedule()), config, seed=seed
        ).run()
        assert replay.to_json(include_jobs=True) == live.to_json(
            include_jobs=True
        )


class TestFairShareNonStarvation:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000),
           weights=st.lists(st.floats(0.5, 4.0), min_size=2, max_size=4))
    def test_every_tenant_with_pending_jobs_finishes(self, seed,
                                                     weights) -> None:
        tenants = tuple(
            TenantSpec(name=f"tenant-{i}", weight=w,
                       workflows=(("cybershake", 5),))
            for i, w in enumerate(weights)
        )
        # a burst: everything arrives almost at once → maximal contention
        arrivals = PoissonArrivals(
            10.0, tenants, seed=seed, max_jobs=3 * len(tenants)
        )
        result = SchedulerService(
            arrivals, ServiceConfig(policy="fair"), seed=seed
        ).run()
        submitted = {}
        for job in arrivals.schedule():
            submitted[job.tenant] = submitted.get(job.tenant, 0) + 1
        finished = {
            name: stats["jobs"]
            for name, stats in result.tenant_summary().items()
        }
        for tenant, n in submitted.items():
            assert finished.get(tenant) == n, (
                f"{tenant} submitted {n} but finished "
                f"{finished.get(tenant, 0)}"
            )
        assert result.n_failed == 0

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_no_tenant_waits_for_full_drain(self, seed) -> None:
        """Fair share interleaves: each tenant starts executing before
        the service has completely finished all other tenants' jobs."""
        arrivals = _poisson(seed, 10.0, 3, 9, size=5)
        result = SchedulerService(
            arrivals, ServiceConfig(policy="fair"), seed=seed
        ).run()
        by_tenant = {}
        for rec in result.jobs:
            by_tenant.setdefault(rec.tenant, []).append(rec)
        for tenant, records in by_tenant.items():
            first_start = min(r.first_dispatch_time for r in records)
            others_done = max(
                r.completion_time
                for r in result.jobs
                if r.tenant != tenant
            )
            assert first_start < others_done, (
                f"{tenant} was starved until every other tenant drained"
            )


class TestClockMonotonicity:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000),
           policy=st.sampled_from(["fifo", "fair", "deadline"]),
           rate=st.sampled_from([0.01, 0.5, 10.0]))
    def test_per_job_times_ordered(self, seed, policy, rate) -> None:
        arrivals = PoissonArrivals(
            rate, default_tenants(3, "cybershake", 5, 1e6),
            seed=seed, max_jobs=6,
        )
        result = SchedulerService(
            arrivals, ServiceConfig(policy=policy), seed=seed
        ).run()
        assert result.n_jobs == 6
        for rec in result.jobs:
            assert rec.arrival_time <= rec.admit_time
            assert rec.admit_time <= rec.first_dispatch_time
            assert rec.first_dispatch_time <= rec.completion_time
            assert rec.latency >= 0.0
        assert result.end_time == max(
            r.completion_time for r in result.jobs
        )

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 1000), cap=st.integers(1, 3))
    def test_admission_control_defers_admit_time(self, seed, cap) -> None:
        """With max_in_flight, admit times still sit between arrival and
        first dispatch, and at most `cap` jobs ever overlap in execution."""
        arrivals = _poisson(seed, 10.0, 2, 6, size=5)
        result = SchedulerService(
            arrivals, ServiceConfig(max_in_flight=cap), seed=seed
        ).run()
        for rec in result.jobs:
            assert rec.arrival_time <= rec.admit_time
            assert rec.admit_time <= rec.first_dispatch_time
        # overlap check: count jobs whose [admit, completion) intervals
        # intersect pairwise at any admit instant
        for rec in result.jobs:
            overlapping = sum(
                1 for other in result.jobs
                if other.admit_time <= rec.admit_time < other.completion_time
            )
            assert overlapping <= cap


def test_metrics_json_is_canonical() -> None:
    """to_json is sorted-keys/indent-1 — byte-stable across dict orders."""
    arrivals = _poisson(7, 0.05, 2, 3, size=5)
    result = SchedulerService(arrivals, seed=7).run()
    text = result.to_json(include_jobs=True)
    assert text == json.dumps(
        json.loads(text), sort_keys=True, indent=1
    )
