"""Tests for repro.sim.validate + hostile-environment property checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.schedulers import GreedyOnlineScheduler, RandomScheduler
from repro.sim import (
    BernoulliFailures,
    GaussianFluctuation,
    PeriodicMigrations,
    PoissonRevocations,
    WorkflowSimulator,
    ZeroCostNetwork,
    validate_result,
)
from repro.sim.metrics import ActivationRecord, SimulationResult
from repro.util.validate import ValidationError

from tests.test_sim_properties import random_dag, random_fleet


class TestValidateResult:
    def _ok_result(self, diamond, fleet_small):
        return WorkflowSimulator(
            diamond, fleet_small, GreedyOnlineScheduler(),
            network=ZeroCostNetwork(),
        ).run()

    def test_accepts_valid_run(self, diamond, fleet_small):
        result = self._ok_result(diamond, fleet_small)
        validate_result(diamond, result, fleet_small)

    def test_detects_missing_activation(self, diamond, fleet_small):
        result = self._ok_result(diamond, fleet_small)
        result.records.pop()
        with pytest.raises(ValidationError, match="never executed"):
            validate_result(diamond, result, fleet_small)

    def test_detects_duplicate_record(self, diamond, fleet_small):
        result = self._ok_result(diamond, fleet_small)
        result.records.append(result.records[0])
        with pytest.raises(ValidationError, match="more than once"):
            validate_result(diamond, result, fleet_small)

    def test_detects_dependency_violation(self, diamond, fleet_small):
        result = self._ok_result(diamond, fleet_small)
        child = result.record(3)
        child.start_time = 0.0  # starts before parents finish
        child.ready_time = 0.0
        with pytest.raises(ValidationError, match="before"):
            validate_result(diamond, result, fleet_small)

    def test_detects_capacity_violation(self, fork_join, fleet_small):
        result = WorkflowSimulator(
            fork_join, fleet_small, GreedyOnlineScheduler(),
            network=ZeroCostNetwork(),
        ).run()
        # rewrite every record onto micro VM 0 (capacity 1) concurrently
        for r in result.records:
            r.vm_id = 0
        with pytest.raises(ValidationError, match="capacity"):
            validate_result(fork_join, result, fleet_small)

    def test_detects_unknown_vm(self, diamond, fleet_small):
        result = self._ok_result(diamond, fleet_small)
        result.records[0].vm_id = 404
        with pytest.raises(ValidationError, match="unknown VM"):
            validate_result(diamond, result, fleet_small)

    def test_detects_makespan_mismatch(self, diamond, fleet_small):
        result = self._ok_result(diamond, fleet_small)
        result.makespan += 5.0
        with pytest.raises(ValidationError, match="makespan"):
            validate_result(diamond, result, fleet_small)

    def test_partial_run_with_flag(self, chain, fleet_small):
        result = WorkflowSimulator(
            chain, fleet_small, GreedyOnlineScheduler(),
            network=ZeroCostNetwork(),
            failures=BernoulliFailures(1.0), max_attempts=1,
        ).run()
        assert not result.succeeded
        with pytest.raises(ValidationError):
            validate_result(chain, result, fleet_small)
        validate_result(chain, result, fleet_small, require_success=False)

    def test_needs_fleet(self, diamond, fleet_small):
        result = self._ok_result(diamond, fleet_small)
        bare = SimulationResult(
            workflow_name=result.workflow_name,
            records=result.records,
            makespan=result.makespan,
            final_state=result.final_state,
        )
        with pytest.raises(ValidationError, match="fleet"):
            validate_result(diamond, bare)


class TestHostileEnvironmentProperties:
    """All environment models at once: invariants must still hold."""

    @settings(max_examples=25, deadline=None)
    @given(wf=random_dag(), fleet=random_fleet(),
           seed=st.integers(min_value=0, max_value=500))
    def test_full_hostility(self, wf, fleet, seed):
        sim = WorkflowSimulator(
            wf, fleet, GreedyOnlineScheduler(),
            network=ZeroCostNetwork(),
            fluctuation=GaussianFluctuation(0.25),
            failures=BernoulliFailures(0.15),
            migrations=PeriodicMigrations(mean_interval=40.0,
                                          min_downtime=2.0, max_downtime=8.0),
            revocations=PoissonRevocations(mean_lifetime=300.0,
                                           spot_fraction=0.4),
            max_attempts=25,
            seed=seed,
        )
        result = sim.run()
        validate_result(wf, result, fleet,
                        require_success=result.succeeded)
        assert result.succeeded  # 25 attempts absorb the failure rate

    @settings(max_examples=20, deadline=None)
    @given(wf=random_dag(), fleet=random_fleet(),
           seed=st.integers(min_value=0, max_value=500))
    def test_random_scheduler_under_migrations(self, wf, fleet, seed):
        result = WorkflowSimulator(
            wf, fleet, RandomScheduler(seed=seed),
            network=ZeroCostNetwork(),
            migrations=PeriodicMigrations(mean_interval=30.0,
                                          min_downtime=1.0, max_downtime=5.0),
            seed=seed,
        ).run()
        validate_result(wf, result, fleet)
