"""Tests for repro.sim.events — the event heap."""

import pytest

from repro.sim.events import Event, EventQueue, EventType
from repro.util.validate import ValidationError


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.schedule(5.0, EventType.DISPATCH)
        q.schedule(1.0, EventType.DISPATCH)
        q.schedule(3.0, EventType.DISPATCH)
        assert [q.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.schedule(1.0, EventType.DISPATCH)
        q.schedule(1.0, EventType.ACTIVATION_DONE)
        # completions processed before dispatches at the same instant
        assert q.pop().type is EventType.ACTIVATION_DONE
        assert q.pop().type is EventType.DISPATCH

    def test_fifo_among_equal(self):
        q = EventQueue()
        q.schedule(1.0, EventType.DISPATCH, "first")
        q.schedule(1.0, EventType.DISPATCH, "second")
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_priority_values(self):
        # VM_READY < MIGRATION_END < ACTIVATION_DONE < MIGRATION_START < DISPATCH
        assert (EventType.VM_READY < EventType.MIGRATION_END
                < EventType.ACTIVATION_DONE < EventType.MIGRATION_START
                < EventType.DISPATCH < EventType.END_OF_SIMULATION)


class TestCancellation:
    def test_cancelled_skipped(self):
        q = EventQueue()
        ev = q.schedule(1.0, EventType.DISPATCH, "dead")
        q.schedule(2.0, EventType.DISPATCH, "alive")
        ev.cancel()
        assert q.pop().payload == "alive"
        assert q.pop() is None

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1.0, EventType.DISPATCH)
        q.schedule(4.0, EventType.DISPATCH)
        ev.cancel()
        assert q.peek_time() == 4.0

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1.0, EventType.DISPATCH)
        q.schedule(2.0, EventType.DISPATCH)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1


class TestEdgeCases:
    def test_empty_pop(self):
        assert EventQueue().pop() is None

    def test_empty_peek(self):
        assert EventQueue().peek_time() is None

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.schedule(1.0, EventType.DISPATCH)
        assert q

    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            EventQueue().schedule(-1.0, EventType.DISPATCH)

    def test_push_returns_event(self):
        q = EventQueue()
        ev = Event(time=1.0, type=EventType.DISPATCH)
        assert q.push(ev) is ev
