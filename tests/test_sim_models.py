"""Tests for the environment models: network, fluctuation, failures,
migrations and the datacenter."""

import numpy as np
import pytest

from repro.dag import File
from repro.sim import (
    BernoulliFailures,
    BurstThrottleFluctuation,
    ComposedFluctuation,
    Datacenter,
    GaussianFluctuation,
    InterferenceFluctuation,
    NoFailures,
    NoFluctuation,
    NoMigrations,
    PeriodicMigrations,
    SharedStorageNetwork,
    ZeroCostNetwork,
)
from repro.sim.vm import VM_TYPES, Vm
from repro.util.rng import RngService
from repro.util.validate import ValidationError

from tests.conftest import make_activation


@pytest.fixture
def micro():
    return Vm(0, VM_TYPES["t2.micro"])


@pytest.fixture
def big():
    return Vm(1, VM_TYPES["t2.2xlarge"])


@pytest.fixture
def rng():
    return RngService(7).stream("test")


class TestNetwork:
    def test_zero_cost(self, micro):
        net = ZeroCostNetwork()
        ac = make_activation(0, inputs=[File("a", 1e9)], outputs=[File("b", 1e9)])
        assert net.stage_in_time(ac, micro, {}) == 0.0
        assert net.stage_out_time(ac, micro) == 0.0

    def test_stage_in_from_storage(self, micro):
        net = SharedStorageNetwork(latency=0.1)
        ac = make_activation(0, inputs=[File("a", 37.5e6)])  # 1s at 300Mbps
        assert net.stage_in_time(ac, micro, {}) == pytest.approx(1.1)

    def test_local_files_free(self, micro):
        net = SharedStorageNetwork(latency=0.1)
        ac = make_activation(0, inputs=[File("a", 37.5e6)])
        assert net.stage_in_time(ac, micro, {"a": micro.id}) == 0.0

    def test_remote_producer_still_costs(self, micro, big):
        net = SharedStorageNetwork(latency=0.0)
        ac = make_activation(0, inputs=[File("a", 37.5e6)])
        assert net.stage_in_time(ac, micro, {"a": big.id}) == pytest.approx(1.0)

    def test_stage_out(self, micro):
        net = SharedStorageNetwork(latency=0.0)
        ac = make_activation(0, outputs=[File("o", 37.5e6)])
        assert net.stage_out_time(ac, micro) == pytest.approx(1.0)

    def test_upload_disabled(self, micro):
        net = SharedStorageNetwork(upload_outputs=False)
        ac = make_activation(0, outputs=[File("o", 1e9)])
        assert net.stage_out_time(ac, micro) == 0.0

    def test_faster_vm_faster_transfer(self, micro, big):
        net = SharedStorageNetwork(latency=0.0)
        ac = make_activation(0, inputs=[File("a", 1e8)])
        assert net.stage_in_time(ac, big, {}) < net.stage_in_time(ac, micro, {})


class TestFluctuation:
    def test_none(self, micro, rng):
        assert NoFluctuation().factor(micro, 0.0, 0.0, rng) == 1.0

    def test_gaussian_centers_on_one(self, micro, rng):
        model = GaussianFluctuation(sigma=0.05)
        samples = [model.factor(micro, 0.0, 0.0, rng) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(1.0, abs=0.01)

    def test_gaussian_floor(self, micro, rng):
        model = GaussianFluctuation(sigma=10.0)
        assert min(
            model.factor(micro, 0.0, 0.0, rng) for _ in range(500)
        ) >= 0.05

    def test_throttle_only_after_credits(self, micro, rng):
        model = BurstThrottleFluctuation(credit_seconds=100.0, throttle_factor=2.0)
        assert model.factor(micro, 0.0, 50.0, rng) == 1.0
        assert model.factor(micro, 0.0, 150.0, rng) == 2.0

    def test_throttle_spares_big_vms(self, big, rng):
        model = BurstThrottleFluctuation(credit_seconds=100.0, throttle_factor=2.0)
        assert model.factor(big, 0.0, 1e6, rng) == 1.0

    def test_throttle_is_deterministic(self, micro, rng):
        model = BurstThrottleFluctuation()
        a = model.factor(micro, 0.0, 1e6, rng)
        b = model.factor(micro, 0.0, 1e6, rng)
        assert a == b

    def test_interference_probability(self, micro, rng):
        model = InterferenceFluctuation(probability=0.5, slowdown=3.0)
        samples = [model.factor(micro, 0.0, 0.0, rng) for _ in range(2000)]
        frac = sum(1 for s in samples if s == 3.0) / len(samples)
        assert 0.45 < frac < 0.55

    def test_composed_multiplies(self, micro, rng):
        model = ComposedFluctuation([
            BurstThrottleFluctuation(credit_seconds=1.0, throttle_factor=2.0),
            BurstThrottleFluctuation(credit_seconds=1.0, throttle_factor=3.0),
        ])
        assert model.factor(micro, 0.0, 10.0, rng) == pytest.approx(6.0)

    def test_composed_empty_rejected(self):
        with pytest.raises(ValueError):
            ComposedFluctuation([])

    def test_throttle_below_one_rejected(self):
        with pytest.raises(ValueError):
            BurstThrottleFluctuation(throttle_factor=0.5)


class TestFailures:
    def test_no_failures(self, micro, rng):
        assert not NoFailures().attempt_fails(make_activation(0), micro, 0, rng)

    def test_always_fails(self, micro, rng):
        model = BernoulliFailures(1.0)
        assert model.attempt_fails(make_activation(0), micro, 0, rng)

    def test_activity_filter(self, micro, rng):
        model = BernoulliFailures(1.0, activity="mDiffFit")
        assert not model.attempt_fails(
            make_activation(0, activity="mAdd"), micro, 0, rng
        )
        assert model.attempt_fails(
            make_activation(0, activity="mDiffFit"), micro, 0, rng
        )

    def test_vm_filter(self, micro, big, rng):
        model = BernoulliFailures(1.0, vm_id=1)
        assert not model.attempt_fails(make_activation(0), micro, 0, rng)
        assert model.attempt_fails(make_activation(0), big, 0, rng)

    def test_probability_validated(self):
        with pytest.raises(ValidationError):
            BernoulliFailures(1.5)


class TestMigrations:
    def test_none(self, micro, rng):
        assert NoMigrations().windows([micro], 1e4, rng) == []

    def test_periodic_windows_in_horizon(self, micro, big, rng):
        model = PeriodicMigrations(mean_interval=100.0)
        windows = model.windows([micro, big], 1000.0, rng)
        assert windows, "expected some migrations over 10 mean intervals"
        for w in windows:
            assert 0 <= w.start < 1000.0
            assert 5.0 <= w.downtime <= 30.0
            assert w.vm_id in (0, 1)

    def test_windows_sorted(self, micro, big, rng):
        model = PeriodicMigrations(mean_interval=50.0)
        windows = model.windows([micro, big], 2000.0, rng)
        starts = [w.start for w in windows]
        assert starts == sorted(starts)

    def test_downtime_bounds_validated(self):
        with pytest.raises(ValueError):
            PeriodicMigrations(min_downtime=10.0, max_downtime=5.0)


class TestDatacenter:
    def test_provision_and_ids(self):
        dc = Datacenter()
        fleet = dc.provision_fleet({"t2.2xlarge": 1, "t2.micro": 2})
        # micros (fewer vcpus) get the low ids
        assert [vm.type.name for vm in fleet] == [
            "t2.micro", "t2.micro", "t2.2xlarge"
        ]
        assert [vm.id for vm in fleet] == [0, 1, 2]

    def test_boot_time_applied(self):
        dc = Datacenter(default_boot_time=42.0)
        vm = dc.provision("t2.micro")
        assert vm.type.boot_time == 42.0

    def test_unknown_type(self):
        with pytest.raises(ValidationError):
            Datacenter().provision("m5.large")

    def test_billing_hourly_ceiling(self):
        dc = Datacenter()
        dc.provision("t2.micro")
        dc.release_all(at=10.0)  # 10 seconds -> 1 full hour billed
        assert dc.bill(10.0) == pytest.approx(VM_TYPES["t2.micro"].price_per_hour)

    def test_billing_per_second(self):
        dc = Datacenter()
        dc.provision("t2.micro")
        dc.release_all(at=3600.0)
        assert dc.bill(3600.0, per_second_billing=True) == pytest.approx(
            VM_TYPES["t2.micro"].price_per_hour
        )

    def test_double_release_rejected(self):
        dc = Datacenter()
        vm = dc.provision("t2.micro")
        dc.release(vm.id, 10.0)
        with pytest.raises(ValidationError):
            dc.release(vm.id, 20.0)

    def test_release_before_provision_rejected(self):
        dc = Datacenter()
        vm = dc.provision("t2.micro", at=100.0)
        with pytest.raises(ValidationError):
            dc.release(vm.id, 50.0)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValidationError):
            Datacenter().provision_fleet({})
