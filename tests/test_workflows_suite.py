"""Tests for the other Pegasus workflows + the registry + properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dag import profile_dag
from repro.util.validate import ValidationError
from repro.workflows import (
    CyberShakeRecipe,
    EpigenomicsRecipe,
    InspiralRecipe,
    SiphtRecipe,
    available_workflows,
    cybershake,
    epigenomics,
    inspiral,
    make_workflow,
    sipht,
)


class TestCyberShake:
    def test_exact_size(self):
        for n in (5, 17, 30, 60):
            assert len(cybershake(n)) == n

    def test_four_levels(self):
        assert len(cybershake(30).levels()) == 4

    def test_activities(self):
        acts = {ac.activity for ac in cybershake(30)}
        assert acts == {"ExtractSGT", "SeismogramSynthesis", "ZipSeis",
                        "PeakValCalcOkaya", "ZipPSA"}

    def test_zips_are_sinks(self):
        wf = cybershake(30)
        exits = {wf.activation(i).activity for i in wf.exits()}
        assert exits == {"ZipSeis", "ZipPSA"}

    def test_too_small(self):
        with pytest.raises(ValidationError):
            cybershake(CyberShakeRecipe.min_activations() - 1)


class TestEpigenomics:
    def test_exact_size(self):
        for n in (8, 24, 32):
            assert len(epigenomics(n)) == n

    def test_chain_heavy(self):
        # epigenomics is deep: at least 6 levels even when small
        assert len(epigenomics(8).levels()) >= 6

    def test_pileup_is_sink(self):
        wf = epigenomics(24)
        assert [wf.activation(i).activity for i in wf.exits()] == ["pileup"]

    def test_map_dominates_runtime(self):
        wf = epigenomics(24)
        map_time = sum(ac.runtime for ac in wf if ac.activity == "map")
        assert map_time > 0.5 * sum(ac.runtime for ac in wf)


class TestInspiral:
    def test_exact_size(self):
        for n in (6, 22, 30, 44):
            assert len(inspiral(n)) == n

    def test_six_levels(self):
        assert len(inspiral(30).levels()) == 6

    def test_structure(self):
        wf = inspiral(30)
        counts = {}
        for ac in wf:
            counts[ac.activity] = counts.get(ac.activity, 0) + 1
        assert counts["TmpltBank"] == counts["Inspiral"]
        assert counts["TrigBank"] == counts["Inspiral2"]
        assert counts["Thinca"] == counts["Thinca2"]


class TestSipht:
    def test_exact_size(self):
        for n in (13, 30, 60):
            assert len(sipht(n)) == n

    def test_annotate_is_single_sink(self):
        wf = sipht(30)
        assert [wf.activation(i).activity for i in wf.exits()] == ["SRNA_annotate"]

    def test_patser_pool_scales(self):
        small = sum(1 for ac in sipht(13) if ac.activity == "Patser")
        large = sum(1 for ac in sipht(40) if ac.activity == "Patser")
        assert small == 1 and large == 28


class TestRegistry:
    def test_lists_all_five(self):
        assert available_workflows() == [
            "cybershake", "epigenomics", "inspiral", "montage", "sipht"
        ]

    def test_make_by_name(self):
        wf = make_workflow("montage", 25, seed=4)
        assert wf.name == "montage-25"

    def test_defaults(self):
        assert len(make_workflow("montage")) == 50  # the paper's size

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            make_workflow("nonexistent")


from repro.workflows.registry import recipe_class

RECIPE_RANGES = [
    ("montage", 11, 59),
    ("cybershake", 5, 59),
    ("epigenomics", 8, 59),
    ("inspiral", 6, 59),
    ("sipht", 13, 59),
]


def _draw_size(data, name, lo, hi):
    """Draw a target size and snap it to the nearest constructible one."""
    target = data.draw(st.integers(min_value=lo, max_value=hi))
    return recipe_class(name).nearest_constructible(target)


class TestGeneratorProperties:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_all_recipes_yield_valid_exact_dags(self, data):
        name, lo, hi = data.draw(st.sampled_from(RECIPE_RANGES))
        n = _draw_size(data, name, lo, hi)
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        wf = make_workflow(name, n, seed=seed)
        assert len(wf) == n
        wf.validate()
        # all runtimes positive, all files non-negative
        for ac in wf:
            assert ac.runtime > 0
            for f in list(ac.inputs) + list(ac.outputs):
                assert f.size_bytes >= 0

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_single_entry_component_reachability(self, data):
        """Every activation is reachable from some entry (no orphans)."""
        name, lo, hi = data.draw(st.sampled_from(RECIPE_RANGES))
        n = _draw_size(data, name, lo, hi)
        wf = make_workflow(name, n, seed=0)
        reached = set(wf.entries())
        frontier = list(reached)
        while frontier:
            node = frontier.pop()
            for child in wf.children(node):
                if child not in reached:
                    reached.add(child)
                    frontier.append(child)
        assert reached == set(wf.activation_ids)

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_parallelism_exceeds_one(self, data):
        """Each benchmark workflow has exploitable parallelism."""
        name, lo, hi = data.draw(st.sampled_from(RECIPE_RANGES))
        n = _draw_size(data, name, max(lo, 20), hi)
        p = profile_dag(make_workflow(name, n, seed=1))
        assert p.parallelism > 1.0
