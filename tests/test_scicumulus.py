"""Tests for repro.scicumulus — XML spec, cloud, MPI engine, provenance,
and the SWfMS facade."""

import pytest

from repro.core import ReassignParams
from repro.schedulers import HeftScheduler, SchedulingPlan
from repro.scicumulus import (
    CloudProfile,
    MpiConfig,
    MpiExecutionEngine,
    ProvenanceStore,
    SciCumulusRL,
    SimulatedCloud,
    workflow_from_xml,
    workflow_to_xml,
)
from repro.scicumulus.swfms import fleet_label
from repro.sim.metrics import ActivationRecord, SimulationResult
from repro.util.validate import ValidationError
from repro.workflows import montage


class TestXmlSpec:
    def test_round_trip(self, montage25):
        back = workflow_from_xml(workflow_to_xml(montage25))
        assert len(back) == len(montage25)
        assert back.edges == montage25.edges
        assert back.name == montage25.name
        for i in montage25.activation_ids:
            assert back.activation(i).runtime == pytest.approx(
                montage25.activation(i).runtime, rel=1e-5
            )

    def test_file_sizes_survive(self, data_diamond):
        data_diamond.infer_data_dependencies()
        back = workflow_from_xml(workflow_to_xml(data_diamond))
        assert back.activation(1).inputs[0].size_bytes == pytest.approx(1e6)

    def test_malformed(self):
        with pytest.raises(ValidationError):
            workflow_from_xml("<SciCumulus")
        with pytest.raises(ValidationError):
            workflow_from_xml("<Other/>")

    def test_file_write(self, montage25, tmp_path):
        path = tmp_path / "spec.xml"
        workflow_to_xml(montage25, path)
        assert workflow_from_xml(path.read_text()).name == montage25.name


class TestCloud:
    def test_deploy_ids_micros_first(self):
        cloud = SimulatedCloud(seed=1)
        fleet = cloud.deploy({"t2.2xlarge": 1, "t2.micro": 2})
        assert [vm.type.name for vm in fleet] == [
            "t2.micro", "t2.micro", "t2.2xlarge"
        ]

    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError):
            SimulatedCloud().deploy({"m5.large": 1})

    def test_execution_time_noisy_but_positive(self, montage25):
        cloud = SimulatedCloud(seed=1)
        fleet = cloud.deploy({"t2.micro": 1})
        ac = montage25.activation(0)
        times = [cloud.execution_time(ac, fleet[0], 0.0) for _ in range(20)]
        assert all(t > 0 for t in times)
        assert len(set(times)) > 1  # jitter

    def test_busy_time_accrues_and_throttles(self, montage25):
        profile = CloudProfile(jitter_sigma=0.0,
                               throttle_credit_seconds=10.0,
                               throttle_factor=3.0,
                               interference_probability=0.0)
        cloud = SimulatedCloud(profile, seed=1)
        fleet = cloud.deploy({"t2.micro": 1})
        ac = montage25.activation(0)
        first = cloud.execution_time(ac, fleet[0], 0.0)
        # push busy time over the credit budget
        while cloud.busy_time(0) < 10.0:
            cloud.execution_time(ac, fleet[0], 0.0)
        throttled = cloud.execution_time(ac, fleet[0], 0.0)
        assert throttled == pytest.approx(first * 3.0, rel=1e-6)

    def test_teardown_bills(self):
        cloud = SimulatedCloud(seed=1)
        cloud.deploy({"t2.micro": 2})
        assert cloud.teardown(at=100.0) > 0

    def test_profiles(self):
        assert CloudProfile.calm().interference_probability == 0.0
        assert (CloudProfile.stormy().jitter_sigma
                > CloudProfile().jitter_sigma)

    def test_transfer_time(self):
        cloud = SimulatedCloud(seed=1)
        fleet = cloud.deploy({"t2.micro": 1})
        t = cloud.transfer_time(2, 37.5e6, fleet[0])
        assert t == pytest.approx(2 * cloud.profile.storage_latency + 1.0)
        with pytest.raises(ValidationError):
            cloud.transfer_time(-1, 0, fleet[0])


class TestMpiEngine:
    def _setup(self, wf, spec, plan=None, profile=None):
        cloud = SimulatedCloud(profile or CloudProfile.calm(), seed=3)
        fleet = cloud.deploy(spec)
        plan = plan or HeftScheduler().plan(wf, fleet)
        return MpiExecutionEngine(wf, fleet, plan, cloud), plan

    def test_executes_whole_workflow(self, montage25):
        engine, plan = self._setup(montage25, {"t2.micro": 2, "t2.2xlarge": 1})
        result = engine.run()
        assert result.succeeded
        assert len(result.records) == 25
        assert result.assignment == plan.assignment

    def test_dependencies_respected(self, montage25):
        engine, _ = self._setup(montage25, {"t2.micro": 2, "t2.2xlarge": 1})
        result = engine.run()
        finish = {r.activation_id: r.finish_time for r in result.records}
        start = {r.activation_id: r.start_time for r in result.records}
        for p, c in montage25.edges:
            assert start[c] >= finish[p] - 1e-9

    def test_slave_count_is_vcpus(self, montage25):
        engine, _ = self._setup(montage25, {"t2.micro": 8, "t2.2xlarge": 1})
        assert len(engine.slaves) == 16
        assert {s.rank for s in engine.slaves} == set(range(1, 17))

    def test_mpi_overheads_add_time(self, montage25):
        fast, _ = self._setup(montage25, {"t2.micro": 2, "t2.2xlarge": 1})
        t_fast = fast.run().makespan
        cloud = SimulatedCloud(CloudProfile.calm(), seed=3)
        fleet = cloud.deploy({"t2.micro": 2, "t2.2xlarge": 1})
        plan = HeftScheduler().plan(montage25, fleet)
        slow = MpiExecutionEngine(
            montage25, fleet, plan, cloud,
            MpiConfig(message_latency=1.0, master_overhead=0.5),
        )
        assert slow.run().makespan > t_fast

    def test_plan_mismatch_rejected(self, montage25):
        cloud = SimulatedCloud(seed=1)
        fleet = cloud.deploy({"t2.micro": 1})
        bad = SchedulingPlan(assignment={0: 0})
        with pytest.raises(ValidationError):
            MpiExecutionEngine(montage25, fleet, bad, cloud)

    def test_deterministic_given_seed(self, montage25):
        a, _ = self._setup(montage25, {"t2.micro": 2, "t2.2xlarge": 1})
        b, _ = self._setup(montage25, {"t2.micro": 2, "t2.2xlarge": 1})
        assert a.run().makespan == b.run().makespan


class TestProvenance:
    def _result(self):
        return SimulationResult(
            workflow_name="wf",
            records=[
                ActivationRecord(0, "a", 3, 0.0, 1.0, 5.0),
                ActivationRecord(1, "b", 4, 1.0, 2.0, 8.0),
            ],
            makespan=8.0,
            final_state="successfully finished",
        )

    def test_record_and_query_executions(self):
        store = ProvenanceStore()
        eid = store.record_execution(self._result(), "HEFT", "fleetA", cost=1.5)
        rows = store.executions()
        assert len(rows) == 1
        assert rows[0].id == eid and rows[0].cost == 1.5
        assert store.executions("wf")[0].scheduler == "HEFT"
        assert store.executions("other") == []

    def test_history_shape(self):
        store = ProvenanceStore()
        store.record_execution(self._result(), "HEFT", "fleetA")
        history = store.execution_history("wf")
        assert history == [(3, 4.0, 1.0), (4, 6.0, 1.0)]

    def test_history_excludes_failures(self):
        result = self._result()
        result.records[0].failed = True
        store = ProvenanceStore()
        store.record_execution(result, "HEFT", "fleetA")
        assert len(store.execution_history("wf")) == 1

    def test_learning_run_round_trip(self, montage25, fleet16):
        from repro.core import ReassignLearner

        params = ReassignParams(episodes=3)
        learning = ReassignLearner(montage25, fleet16, params, seed=1).learn()
        store = ProvenanceStore()
        store.record_learning_run("wf", "fleetA", params.label(), learning)
        qjson = store.latest_qtable("wf", "fleetA", params.label())
        assert qjson is not None
        from repro.rl.qtable import QTable

        assert len(QTable.from_json(qjson)) > 0
        assert store.latest_qtable("wf", "other") is None

    def test_activation_rows(self):
        store = ProvenanceStore()
        eid = store.record_execution(self._result(), "HEFT", "f")
        assert len(store.activation_rows(eid)) == 2
        with pytest.raises(ValidationError):
            store.activation_rows(999)

    def test_file_persistence(self, tmp_path):
        path = tmp_path / "prov.db"
        with ProvenanceStore(path) as store:
            store.record_execution(self._result(), "HEFT", "f")
        with ProvenanceStore(path) as store:
            assert len(store.executions()) == 1


class TestSwfms:
    def test_fleet_label(self):
        label = fleet_label({"t2.micro": 8, "t2.2xlarge": 1})
        assert label == "8x t2.micro + 1x t2.2xlarge (16 vCPUs)"

    def test_heft_pipeline(self, montage25):
        swfms = SciCumulusRL(seed=1)
        report = swfms.run_workflow(
            montage25, {"t2.micro": 2, "t2.2xlarge": 1}, HeftScheduler()
        )
        assert report.scheduler == "HEFT"
        assert report.vcpus == 10
        assert report.total_execution_time > 0
        assert report.cost > 0
        assert report.deploy_time > 0
        assert len(swfms.provenance.executions(montage25.name)) == 1

    def test_reassign_pipeline_records_learning(self, montage25):
        swfms = SciCumulusRL(seed=1)
        report = swfms.run_workflow(
            montage25, {"t2.micro": 2, "t2.2xlarge": 1},
            "reassign", ReassignParams(episodes=3),
        )
        assert "ReASSIgN" in report.scheduler
        assert report.learning_time > 0
        assert len(swfms.provenance.learning_runs(montage25.name)) == 1

    def test_provenance_warm_start_used(self, montage25):
        swfms = SciCumulusRL(seed=1)
        params = ReassignParams(episodes=3)
        spec = {"t2.micro": 2, "t2.2xlarge": 1}
        swfms.run_workflow(montage25, spec, "reassign", params)
        # the second run must find a prior Q-table in provenance
        label = fleet_label(spec)
        assert swfms.provenance.latest_qtable(
            montage25.name, label, params.label()
        ) is not None
        report2 = swfms.run_workflow(montage25, spec, "reassign", params)
        assert report2.total_execution_time > 0

    def test_unknown_scheduler_string(self, montage25):
        with pytest.raises(ValidationError):
            SciCumulusRL(seed=1).run_workflow(
                montage25, {"t2.micro": 1}, "dqn"
            )

    def test_empty_fleet_rejected(self, montage25):
        with pytest.raises(ValidationError):
            SciCumulusRL(seed=1).run_workflow(montage25, {}, HeftScheduler())

    def test_execute_plan_direct(self, montage25):
        swfms = SciCumulusRL(seed=1)
        spec = {"t2.micro": 2, "t2.2xlarge": 1}
        fleet = swfms._learning_fleet(spec)
        plan = HeftScheduler().plan(montage25, fleet)
        report = swfms.execute_plan(montage25, spec, plan, "HEFT")
        assert report.total_execution_time > 0
