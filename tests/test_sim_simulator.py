"""Tests for repro.sim.simulator — the discrete-event engine."""

import pytest

from repro.schedulers import FcfsScheduler, GreedyOnlineScheduler
from repro.sim import (
    BernoulliFailures,
    NoFluctuation,
    PeriodicMigrations,
    SharedStorageNetwork,
    WorkflowSimulator,
    ZeroCostNetwork,
    t2_fleet,
)
from repro.sim.simulator import SimulationError
from repro.sim.vm import VM_TYPES, Vm, VmType
from repro.util.validate import ValidationError

from tests.conftest import make_activation


def run(wf, vms, scheduler=None, **kw):
    kw.setdefault("network", ZeroCostNetwork())
    sim = WorkflowSimulator(wf, vms, scheduler or FcfsScheduler(), **kw)
    return sim.run()


class TestBasicExecution:
    def test_chain_is_serial(self, chain, fleet_small):
        result = run(chain, fleet_small)
        assert result.succeeded
        assert result.makespan == pytest.approx(1 + 2 + 3 + 4 + 5)

    def test_diamond_parallel_branches(self, diamond, fleet_small):
        result = run(diamond, fleet_small)
        # 10 + max(20, 5) + 8
        assert result.makespan == pytest.approx(38.0)

    def test_fork_join_on_one_micro(self, fork_join):
        # single 1-slot VM: everything serializes
        result = run(fork_join, [Vm(0, VM_TYPES["t2.micro"])])
        assert result.makespan == pytest.approx(3 + 6 * 10 + 3)

    def test_fork_join_on_big_vm(self, fork_join):
        # 8 slots: the 6 middles run together
        result = run(fork_join, [Vm(0, VM_TYPES["t2.2xlarge"])])
        assert result.makespan == pytest.approx(3 + 10 + 3)

    def test_every_activation_has_record(self, montage25, fleet16):
        result = run(montage25, fleet16)
        assert sorted(r.activation_id for r in result.records) == (
            montage25.activation_ids
        )

    def test_caller_workflow_not_mutated(self, diamond, fleet_small):
        run(diamond, fleet_small)
        from repro.dag import ActivationState

        assert all(ac.state is ActivationState.LOCKED for ac in diamond)


class TestInvariants:
    def test_dependencies_respected(self, montage25, fleet16):
        result = run(montage25, fleet16)
        finish = {r.activation_id: r.finish_time for r in result.records}
        start = {r.activation_id: r.start_time for r in result.records}
        for parent, child in montage25.edges:
            assert start[child] >= finish[parent] - 1e-9

    def test_capacity_never_exceeded(self, montage25, fleet16):
        result = run(montage25, fleet16)
        capacity = {vm.id: vm.capacity for vm in fleet16}
        events = []
        for r in result.records:
            events.append((r.start_time, 1, r.vm_id))
            events.append((r.finish_time, -1, r.vm_id))
        events.sort(key=lambda e: (e[0], e[1]))
        load = {vm.id: 0 for vm in fleet16}
        for _, delta, vm_id in events:
            load[vm_id] += delta
            assert load[vm_id] <= capacity[vm_id]

    def test_queue_time_non_negative(self, montage25, fleet16):
        result = run(montage25, fleet16)
        for r in result.records:
            assert r.queue_time >= 0
            assert r.execution_time > 0
            assert r.total_time == pytest.approx(r.execution_time + r.queue_time)

    def test_makespan_is_max_finish(self, montage25, fleet16):
        result = run(montage25, fleet16)
        assert result.makespan == max(r.finish_time for r in result.records)


class TestDeterminism:
    def test_same_seed_same_result(self, montage25, fleet16):
        from repro.sim import GaussianFluctuation

        a = run(montage25, fleet16, fluctuation=GaussianFluctuation(0.2), seed=5)
        b = run(montage25, fleet16, fluctuation=GaussianFluctuation(0.2), seed=5)
        assert a.makespan == b.makespan
        assert a.assignment == b.assignment

    def test_different_seed_differs(self, montage25, fleet16):
        from repro.sim import GaussianFluctuation

        a = run(montage25, fleet16, fluctuation=GaussianFluctuation(0.2), seed=5)
        b = run(montage25, fleet16, fluctuation=GaussianFluctuation(0.2), seed=6)
        assert a.makespan != b.makespan


class TestTransfers:
    def test_shared_storage_slows_run(self, montage25, fleet16):
        fast = run(montage25, fleet16)  # zero-cost network
        slow = WorkflowSimulator(
            montage25, fleet16, FcfsScheduler(),
            network=SharedStorageNetwork(latency=0.5),
        ).run()
        assert slow.makespan > fast.makespan

    def test_stage_in_recorded(self, montage25, fleet16):
        result = WorkflowSimulator(
            montage25, fleet16, FcfsScheduler(),
            network=SharedStorageNetwork(latency=0.5),
        ).run()
        entries = set(montage25.entries())
        assert all(
            r.stage_in_time > 0 for r in result.records
            if r.activation_id in entries
        )


class TestFailures:
    def test_retries_eventually_succeed(self, montage25, fleet16):
        result = run(
            montage25, fleet16,
            failures=BernoulliFailures(0.3),
            max_attempts=50,
            seed=3,
        )
        assert result.succeeded
        assert any(r.attempts > 1 for r in result.records)

    def test_terminal_failure_state(self, chain, fleet_small):
        result = run(
            chain, fleet_small,
            failures=BernoulliFailures(1.0),
            max_attempts=1,
        )
        assert result.final_state == "finished with failure"
        assert not result.succeeded
        # only the first chain element ever ran
        assert len(result.records) == 1
        assert result.records[0].failed

    def test_failure_cascades_to_descendants(self, diamond, fleet_small):
        # fail node 1 only; nodes 0, 2 succeed, 3 is cancelled
        result = run(
            diamond, fleet_small,
            failures=BernoulliFailures(1.0, activity="prog-fail"),
            max_attempts=1,
        )
        assert result.succeeded  # no activation matched the failing activity

    def test_retry_consumes_time(self, chain, fleet_small):
        clean = run(chain, fleet_small)
        flaky = run(
            chain, fleet_small,
            failures=BernoulliFailures(0.5),
            max_attempts=20,
            seed=1,
        )
        assert flaky.makespan > clean.makespan


class TestMigrations:
    def test_migrations_delay_completion(self, montage25, fleet16):
        base = run(montage25, fleet16, seed=2)
        migrated = run(
            montage25, fleet16,
            migrations=PeriodicMigrations(mean_interval=60.0,
                                          min_downtime=10.0, max_downtime=20.0),
            seed=2,
        )
        assert migrated.makespan > base.makespan
        assert migrated.succeeded


class TestBoot:
    def test_boot_delays_start(self, chain):
        slow_type = VmType("slowboot", 1, 1.0, 1.0, 0.0, boot_time=25.0)
        result = run(chain, [Vm(0, slow_type)])
        assert result.records[0].start_time >= 25.0


class TestSchedulerContract:
    def test_bad_vm_choice_raises(self, chain, fleet_small):
        class Bad:
            def select(self, ctx):
                return (ctx.ready_activations[0].id, 999)

        with pytest.raises(ValidationError):
            run(chain, fleet_small, scheduler=Bad())

    def test_busy_vm_choice_raises(self, fork_join):
        class Pile:
            def select(self, ctx):
                return (ctx.ready_activations[0].id, 0)  # ignores busyness

        # VM 0 fills up after one dispatch, but VM 1 stays idle, so the
        # dispatch loop keeps consulting the scheduler — which then
        # illegally targets the busy VM 0.
        vms = [Vm(0, VM_TYPES["t2.micro"]), Vm(1, VM_TYPES["t2.micro"])]
        with pytest.raises(ValidationError):
            run(fork_join, vms, scheduler=Pile())

    def test_do_nothing_forever_deadlocks(self, chain, fleet_small):
        class Lazy:
            def select(self, ctx):
                return None

        with pytest.raises(SimulationError, match="deadlock"):
            run(chain, fleet_small, scheduler=Lazy())

    def test_hooks_called(self, chain, fleet_small):
        calls = []

        class Spy(FcfsScheduler):
            def on_simulation_start(self, ctx):
                calls.append("start")

            def on_dispatched(self, ctx, pending):
                calls.append("dispatch")

            def on_activation_finished(self, ctx, record):
                calls.append("finish")

            def on_simulation_end(self, ctx, result):
                calls.append("end")

        run(chain, fleet_small, scheduler=Spy())
        assert calls[0] == "start" and calls[-1] == "end"
        assert calls.count("dispatch") == 5 and calls.count("finish") == 5

    def test_pending_exposes_te_tf(self, chain, fleet_small):
        seen = []

        class Spy(FcfsScheduler):
            def on_dispatched(self, ctx, pending):
                seen.append((pending.queue_time, pending.planned_execution_time))

        run(chain, fleet_small, scheduler=Spy())
        assert len(seen) == 5
        assert all(te > 0 and tf >= 0 for tf, te in seen)


class TestConstruction:
    def test_empty_fleet_rejected(self, chain):
        with pytest.raises(ValidationError):
            WorkflowSimulator(chain, [], FcfsScheduler())

    def test_duplicate_vm_ids_rejected(self, chain):
        vms = [Vm(0, VM_TYPES["t2.micro"]), Vm(0, VM_TYPES["t2.micro"])]
        with pytest.raises(ValidationError):
            WorkflowSimulator(chain, vms, FcfsScheduler())

    def test_zero_attempts_rejected(self, chain, fleet_small):
        with pytest.raises(ValidationError):
            WorkflowSimulator(chain, fleet_small, FcfsScheduler(), max_attempts=0)

    def test_horizon_exceeded(self, chain, fleet_small):
        with pytest.raises(SimulationError):
            run(chain, fleet_small, horizon=5.0)

    def test_rerunnable(self, chain, fleet_small):
        sim = WorkflowSimulator(chain, fleet_small, FcfsScheduler(),
                                network=ZeroCostNetwork())
        a = sim.run()
        b = sim.run()
        assert a.makespan == b.makespan
