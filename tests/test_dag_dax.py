"""Tests for repro.dag.dax — Pegasus DAX XML I/O."""

import pytest

from repro.dag import parse_dax, parse_dax_file, write_dax
from repro.util.validate import ValidationError
from repro.workflows import montage

SAMPLE_DAX = """<?xml version="1.0" encoding="UTF-8"?>
<adag xmlns="http://pegasus.isi.edu/schema/DAX" name="sample" jobCount="3">
  <job id="ID00000" name="mProjectPP" runtime="13.59">
    <uses file="raw.fits" link="input" size="4200000"/>
    <uses file="proj.fits" link="output" size="8000000"/>
  </job>
  <job id="ID00001" name="mDiffFit" runtime="10.9">
    <uses file="proj.fits" link="input" size="8000000"/>
    <uses file="fit.tbl" link="output" size="300000"/>
  </job>
  <job id="ID00002" name="mConcatFit" runtime="143.0">
    <uses file="fit.tbl" link="input" size="300000"/>
  </job>
  <child ref="ID00001"><parent ref="ID00000"/></child>
  <child ref="ID00002"><parent ref="ID00001"/></child>
</adag>
"""


class TestParse:
    def test_basic(self):
        wf = parse_dax(SAMPLE_DAX)
        assert wf.name == "sample"
        assert len(wf) == 3
        assert wf.edges == [(0, 1), (1, 2)]

    def test_runtimes_and_files(self):
        wf = parse_dax(SAMPLE_DAX)
        ac = wf.activation(0)
        assert ac.activity == "mProjectPP"
        assert ac.runtime == pytest.approx(13.59)
        assert ac.inputs[0].name == "raw.fits"
        assert ac.outputs[0].size_bytes == 8000000

    def test_data_deps_inferred_without_child_elements(self):
        # drop the explicit child/parent relations: file flow still links them
        text = SAMPLE_DAX.replace(
            '<child ref="ID00001"><parent ref="ID00000"/></child>', ""
        ).replace('<child ref="ID00002"><parent ref="ID00001"/></child>', "")
        wf = parse_dax(text)
        assert (0, 1) in wf.edges  # proj.fits producer->consumer

    def test_malformed_xml(self):
        with pytest.raises(ValidationError):
            parse_dax("<adag><job")

    def test_wrong_root(self):
        with pytest.raises(ValidationError):
            parse_dax("<workflow/>")

    def test_missing_runtime(self):
        with pytest.raises(ValidationError):
            parse_dax('<adag><job id="ID1" name="x"/></adag>')

    def test_unknown_child_ref(self):
        text = SAMPLE_DAX.replace('ref="ID00001"', 'ref="ID99999"', 1)
        with pytest.raises(ValidationError):
            parse_dax(text)

    def test_unknown_link_type(self):
        text = SAMPLE_DAX.replace('link="input"', 'link="sideways"', 1)
        with pytest.raises(ValidationError):
            parse_dax(text)


class TestRoundTrip:
    def test_montage_round_trip(self):
        wf = montage(25, seed=7)
        text = write_dax(wf)
        back = parse_dax(text)
        assert len(back) == len(wf)
        assert back.edges == wf.edges
        for i in wf.activation_ids:
            a, b = wf.activation(i), back.activation(i)
            assert a.activity == b.activity
            assert a.runtime == pytest.approx(b.runtime, rel=1e-5)
            assert {f.name for f in a.inputs} == {f.name for f in b.inputs}

    def test_file_io(self, tmp_path):
        wf = montage(25, seed=7)
        path = tmp_path / "montage25.dax"
        write_dax(wf, path)
        back = parse_dax_file(path)
        assert len(back) == 25

    def test_namespaced_output_reparses(self):
        wf = montage(11, seed=0)
        text = write_dax(wf)
        assert "pegasus.isi.edu" in text
        assert len(parse_dax(text)) == 11
