"""Tests for repro.rl.reward — the paper's §III-B reward function."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rl import PerformanceReward, VmPerformanceTracker
from repro.util.validate import ValidationError

times = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


class TestSingleIndex:
    def test_formula(self):
        # Pi = tt*mu + (1-mu)*tf with tt = te + tf
        r = PerformanceReward(mu=0.5)
        assert r.single_index(te=10.0, tf=4.0) == pytest.approx(
            (10 + 4) * 0.5 + 0.5 * 4
        )

    def test_mu_one_ignores_queue_weighting(self):
        r = PerformanceReward(mu=1.0)
        assert r.single_index(10.0, 4.0) == pytest.approx(14.0)

    def test_mu_zero_is_pure_queue(self):
        r = PerformanceReward(mu=0.0)
        assert r.single_index(10.0, 4.0) == pytest.approx(4.0)


class TestVmTracker:
    def test_mean_index(self):
        t = VmPerformanceTracker(mu=0.5)
        t.observe(10.0, 2.0)
        t.observe(20.0, 4.0)
        # P̄i = mean(te)*mu + (1-mu)*mean(tf)
        assert t.mean_index == pytest.approx(15.0 * 0.5 + 0.5 * 3.0)

    def test_empty_is_zero(self):
        assert VmPerformanceTracker(mu=0.5).mean_index == 0.0

    def test_negative_times_rejected(self):
        with pytest.raises(ValidationError):
            VmPerformanceTracker(mu=0.5).observe(-1.0, 0.0)


class TestCrispReward:
    def test_fast_vm_rewarded(self):
        r = PerformanceReward(mu=0.5)
        # vm 0 fast, vm 1 slow
        for _ in range(5):
            r.observe(0, 5.0, 1.0)
            r.observe(1, 50.0, 10.0)
        assert r.partial_reward(0) == 1.0

    def test_outlier_slow_vm_punished(self):
        r = PerformanceReward(mu=0.5)
        for vm in range(4):
            for _ in range(5):
                r.observe(vm, 5.0, 1.0)
        for _ in range(5):
            r.observe(9, 500.0, 100.0)
        assert r.partial_reward(9) == -1.0
        assert r.partial_reward(0) == 1.0

    def test_homogeneous_fleet_all_rewarded(self):
        r = PerformanceReward(mu=0.5)
        for vm in range(3):
            r.observe(vm, 10.0, 2.0)
        for vm in range(3):
            assert r.partial_reward(vm) == 1.0

    def test_stdv_uses_per_vm_dispersion(self):
        r = PerformanceReward(mu=0.5)
        r.observe(0, 10.0, 0.0)
        r.observe(1, 20.0, 0.0)
        r.observe(2, 30.0, 0.0)
        # indices 5, 10, 15 -> global mean Pw=10, stdv over {5,10,15}
        assert r.index_std() == pytest.approx(
            (((5 - 10) ** 2 + 0 + (15 - 10) ** 2) / 3) ** 0.5
        )

    def test_stdv_zero_with_single_vm(self):
        r = PerformanceReward()
        r.observe(0, 10.0, 1.0)
        assert r.index_std() == 0.0


class TestSmoothedReward:
    def test_update_rule(self):
        r = PerformanceReward(mu=0.5, rho=0.5)
        # single vm: always +1 crisp reward
        assert r.step(0, 10.0, 1.0) == pytest.approx(0.5)   # 0 + 0.5*(1-0)
        assert r.step(0, 10.0, 1.0) == pytest.approx(0.75)  # 0.5 + 0.5*(1-0.5)

    def test_converges_to_crisp_value(self):
        r = PerformanceReward(rho=0.5)
        for _ in range(30):
            value = r.step(0, 10.0, 1.0)
        assert value == pytest.approx(1.0, abs=1e-6)

    def test_episode_reset_keeps_history(self):
        r = PerformanceReward()
        r.step(0, 10.0, 1.0)
        r.start_episode(keep_history=True)
        assert r.reward == 0.0
        assert r.vm_index(0) > 0.0  # history survived

    def test_episode_reset_can_clear(self):
        r = PerformanceReward()
        r.step(0, 10.0, 1.0)
        r.start_episode(keep_history=False)
        assert r.vm_index(0) == 0.0

    def test_bootstrap(self):
        r = PerformanceReward()
        r.bootstrap([(0, 10.0, 1.0), (1, 20.0, 2.0)])
        assert r.vm_ids() == [0, 1]
        assert r.global_index() > 0

    def test_snapshot(self):
        r = PerformanceReward(mu=0.5)
        r.observe(3, 10.0, 2.0)
        snap = r.snapshot()
        assert snap == [(3, 1, pytest.approx(10 * 0.5 + 0.5 * 2))]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 4), times, times),
                    min_size=1, max_size=60))
    def test_reward_bounded(self, observations):
        """r^t must stay within [-1, 1] and crisp rewards within {-1, +1}."""
        r = PerformanceReward(mu=0.5, rho=0.7)
        for vm, te, tf in observations:
            value = r.step(vm, te, tf)
            assert -1.0 <= value <= 1.0
            assert r.partial_reward(vm) in (-1.0, 1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), times, times),
                    min_size=2, max_size=40),
           st.floats(min_value=0.0, max_value=1.0))
    def test_global_index_is_weighted_mean(self, observations, mu):
        r = PerformanceReward(mu=mu)
        for vm, te, tf in observations:
            r.observe(vm, te, tf)
        tes = [te for _, te, _ in observations]
        tfs = [tf for _, _, tf in observations]
        expected = mu * sum(tes) / len(tes) + (1 - mu) * sum(tfs) / len(tfs)
        assert r.global_index() == pytest.approx(expected, rel=1e-9, abs=1e-9)
