"""Tests for repro.dag.analysis — DAG metrics."""

import networkx as nx
import pytest

from repro.dag import (
    Workflow,
    critical_path,
    critical_path_length,
    level_widths,
    profile_dag,
    serial_runtime,
)

from tests.conftest import make_activation


class TestSerialRuntime:
    def test_chain(self, chain):
        assert serial_runtime(chain) == pytest.approx(1 + 2 + 3 + 4 + 5)

    def test_empty(self):
        assert serial_runtime(Workflow("w")) == 0.0


class TestCriticalPath:
    def test_diamond_takes_heavier_branch(self, diamond):
        path, length = critical_path(diamond)
        assert path == [0, 1, 3]  # branch through runtime-20 node
        assert length == pytest.approx(10 + 20 + 8)

    def test_chain_is_whole_chain(self, chain):
        path, length = critical_path(chain)
        assert path == [0, 1, 2, 3, 4]
        assert length == pytest.approx(15.0)

    def test_empty(self):
        assert critical_path(Workflow("w")) == ([], 0.0)

    def test_single_node(self):
        wf = Workflow("w")
        wf.add_activation(make_activation(0, runtime=7.0))
        assert critical_path(wf) == ([0], 7.0)

    def test_path_is_connected(self, montage25):
        path, _ = critical_path(montage25)
        for a, b in zip(path, path[1:]):
            assert b in montage25.children(a)

    def test_matches_networkx_longest_path(self, montage25):
        g = nx.DiGraph()
        g.add_nodes_from(montage25.activation_ids)
        g.add_edges_from(montage25.edges)
        # node-weighted longest path via edge reweighting on a super-source
        expected = 0.0
        for node in g.nodes:
            # brute force via nx dag_longest_path on runtime-weighted edges
            pass
        dist = {}
        for node in nx.topological_sort(g):
            preds = list(g.predecessors(node))
            base = max((dist[p] for p in preds), default=0.0)
            dist[node] = base + montage25.activation(node).runtime
        assert critical_path_length(montage25) == pytest.approx(max(dist.values()))


class TestLevelWidths:
    def test_fork_join(self, fork_join):
        assert level_widths(fork_join) == [1, 6, 1]


class TestProfile:
    def test_montage_profile(self, montage50):
        p = profile_dag(montage50)
        assert p.n_activations == 50
        assert p.n_levels == 9  # Montage's nine activity levels
        assert p.parallelism > 1.0
        assert p.serial_runtime > p.critical_path_runtime

    def test_rows_renderable(self, diamond):
        rows = profile_dag(diamond).rows()
        assert ("activations", 4) in rows

    def test_parallelism_of_chain_is_one(self, chain):
        assert profile_dag(chain).parallelism == pytest.approx(1.0)

    def test_empty_workflow(self):
        p = profile_dag(Workflow("w"))
        assert p.n_activations == 0
        assert p.parallelism == 0.0
