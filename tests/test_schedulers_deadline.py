"""Tests for repro.schedulers.deadline — deadline-constrained planning."""

import pytest

from repro.dag import Workflow
from repro.schedulers import PlanFollowingScheduler
from repro.schedulers.deadline import (
    DeadlineConstrainedScheduler,
    heft_makespan_estimate,
)
from repro.sim import WorkflowSimulator, ZeroCostNetwork
from repro.util.validate import ValidationError


def run_plan(wf, fleet, plan):
    return WorkflowSimulator(
        wf, fleet, PlanFollowingScheduler(plan), network=ZeroCostNetwork()
    ).run()


class TestHeftEstimate:
    def test_positive_and_consistent(self, montage25, fleet16):
        estimate = heft_makespan_estimate(montage25, fleet16)
        assert estimate > 0
        # the estimate is deterministic
        assert estimate == heft_makespan_estimate(montage25, fleet16)

    def test_scales_with_workflow(self, fleet16):
        from repro.workflows import montage

        small = heft_makespan_estimate(montage(25, seed=1), fleet16)
        large = heft_makespan_estimate(montage(100, seed=1), fleet16)
        assert large > small


class TestDeadlinePlans:
    def test_valid_and_executable(self, montage25, fleet16):
        plan = DeadlineConstrainedScheduler(deadline_factor=1.5).plan(
            montage25, fleet16
        )
        plan.validate_against(montage25, fleet16)
        assert run_plan(montage25, fleet16, plan).succeeded

    def test_tight_deadline_behaves_like_heft(self, montage50, fleet16):
        from repro.schedulers import HeftScheduler

        tight = DeadlineConstrainedScheduler(deadline_factor=1.0).plan(
            montage50, fleet16
        )
        heft = HeftScheduler().plan(montage50, fleet16)
        mk_tight = run_plan(montage50, fleet16, tight).makespan
        mk_heft = run_plan(montage50, fleet16, heft).makespan
        assert mk_tight <= mk_heft * 1.20

    def test_loose_deadline_saves_money(self, montage50, fleet16):
        tight = DeadlineConstrainedScheduler(deadline_factor=1.0).plan(
            montage50, fleet16
        )
        loose = DeadlineConstrainedScheduler(deadline_factor=3.0).plan(
            montage50, fleet16
        )
        cost_tight = run_plan(montage50, fleet16, tight).usage_cost()
        cost_loose = run_plan(montage50, fleet16, loose).usage_cost()
        assert cost_loose <= cost_tight

    def test_loose_deadline_respected(self, montage50, fleet16):
        sched = DeadlineConstrainedScheduler(deadline_factor=2.0)
        deadline = sched.resolve_deadline(montage50, fleet16)
        plan = sched.plan(montage50, fleet16)
        # plan-following replay can only be faster than the planner's
        # conservative single-slot model; allow modest slack regardless
        makespan = run_plan(montage50, fleet16, plan).makespan
        assert makespan <= deadline * 1.10

    def test_absolute_deadline(self, montage25, fleet16):
        estimate = heft_makespan_estimate(montage25, fleet16)
        sched = DeadlineConstrainedScheduler(deadline=estimate * 2)
        assert sched.resolve_deadline(montage25, fleet16) == estimate * 2
        plan = sched.plan(montage25, fleet16)
        plan.validate_against(montage25, fleet16)

    def test_impossible_deadline_is_best_effort(self, montage25, fleet16):
        # a 1-second deadline can't be met; the planner must still emit a
        # complete, executable plan (fastest placements)
        plan = DeadlineConstrainedScheduler(deadline=1.0).plan(
            montage25, fleet16
        )
        assert run_plan(montage25, fleet16, plan).succeeded

    def test_priority_topologically_consistent(self, montage25, fleet16):
        plan = DeadlineConstrainedScheduler().plan(montage25, fleet16)
        pos = {n: i for i, n in enumerate(plan.priority)}
        for parent, child in montage25.edges:
            assert pos[parent] < pos[child]

    def test_validation(self, fleet_small):
        with pytest.raises(ValidationError):
            DeadlineConstrainedScheduler(deadline=0.0)
        with pytest.raises(ValidationError):
            DeadlineConstrainedScheduler(deadline_factor=0.0)
        with pytest.raises(ValidationError):
            DeadlineConstrainedScheduler().plan(Workflow("empty"), fleet_small)
