"""Tests for repro.experiments — the table/figure harness (scaled down)."""

import pytest

from repro.core.reassign import ReassignParams
from repro.experiments import (
    TABLE1_FLEETS,
    default_episodes,
    fleet_for,
    render_table1,
    run_figure1,
    run_paper_sweep,
    run_table4,
    run_table5,
)
from repro.experiments.ablations import (
    run_episode_ablation,
    run_reward_ablation,
    run_rule_ablation,
    run_workload_ablation,
)
from repro.experiments.environments import fleet_spec_for
from repro.experiments.table4 import render_table4
from repro.experiments.table5 import render_table5
from repro.sim.vm import fleet_vcpus
from repro.util.validate import ValidationError
from repro.workflows import montage


class TestTable1:
    def test_fleet_shapes(self):
        for vcpus in (16, 32, 64):
            assert fleet_vcpus(fleet_for(vcpus)) == vcpus

    def test_paper_counts(self):
        assert TABLE1_FLEETS == {16: (8, 1), 32: (8, 3), 64: (8, 7)}

    def test_render_contains_rows(self):
        text = render_table1()
        assert "| 9 " in text and "| 11" in text and "| 15" in text

    def test_unknown_fleet(self):
        with pytest.raises(ValidationError):
            fleet_for(48)
        with pytest.raises(ValidationError):
            fleet_spec_for(48)

    def test_spec_matches_fleet(self):
        spec = fleet_spec_for(32)
        assert spec == {"t2.micro": 8, "t2.2xlarge": 3}


class TestSweepHarness:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_paper_sweep(
            workflow=montage(25, seed=3),
            vcpu_fleets=(16,),
            episodes=4,
            seed=1,
            grid=(0.5, 1.0),
        )

    def test_covers_grid(self, sweep):
        assert len(sweep.records[16]) == 8  # 2^3 combos

    def test_table2_renders(self, sweep):
        text = sweep.render_table2()
        assert "Table II" in text and "16 vCPUs" in text
        assert len(text.splitlines()) == 8 + 5  # rows + frame

    def test_table3_renders(self, sweep):
        assert "Table III" in sweep.render_table3()

    def test_best_cells(self, sweep):
        best = sweep.best_cells()
        assert 16 in best
        assert best[16].simulated_makespan == min(
            r.simulated_makespan for r in sweep.records[16]
        )

    def test_learning_times_positive(self, sweep):
        assert all(r.learning_time > 0 for r in sweep.records[16])


class TestTable4:
    def test_rows_and_render(self):
        rows = run_table4(
            workflow=montage(25, seed=3),
            vcpu_fleets=(16,),
            episodes=3,
            seed=1,
        )
        assert len(rows) == 4  # HEFT + three alphas
        algos = [r.algorithm for r in rows]
        assert algos.count("HEFT") == 1 and algos.count("ReASSIgN") == 3
        times = [r.total_execution_time for r in rows]
        assert times == sorted(times)  # paper sorts fastest-first per fleet
        text = render_table4(rows)
        assert "Table IV" in text and "00:" in text


class TestTable5:
    def test_plans_and_render(self):
        result = run_table5(workflow=montage(25, seed=3), episodes=3, seed=1)
        assert set(result.plans) == {"HEFT", "C1", "C2", "C3"}
        for plan in result.plans.values():
            assert len(plan.assignment) == 25
        assert result.big_vm_ids == [8]
        text = render_table5(result)
        assert "Table V" in text
        assert len(text.splitlines()) == 25 + 5


class TestFigure1:
    def test_all_stages_traced(self):
        trace = run_figure1(workflow=montage(25, seed=3), episodes=3, seed=1)
        assert trace.n_learning_runs == 1
        assert trace.n_recorded_executions == 1
        assert trace.spec_xml_chars > 100
        text = trace.text()
        for stage in ("SCSetup", "WorkflowSim", "SCStarter", "SCCore",
                      "Provenance"):
            assert stage in text


class TestAblations:
    def test_reward_ablation(self):
        rows = run_reward_ablation(
            workflow=montage(25, seed=3),
            mus=(0.0, 1.0), rhos=(0.5,), episodes=3, seed=1,
        )
        assert len(rows) == 2
        assert all(r.simulated_makespan > 0 for r in rows)
        assert all(-1 <= r.mean_final_reward <= 1 for r in rows)

    def test_rule_ablation(self):
        out = run_rule_ablation(
            workflow=montage(25, seed=3), episodes=3, seeds=(1,)
        )
        assert set(out) == {"qlearning", "sarsa", "doubleq",
                            "random-exploration-only"}

    def test_workload_ablation(self):
        rows = run_workload_ablation(
            episodes=3, seed=1,
            workloads=(("montage", 25), ("sipht", 30)),
        )
        assert len(rows) == 2
        for name, heft_mk, rl_mk in rows:
            assert heft_mk > 0 and rl_mk > 0

    def test_episode_ablation(self):
        rows = run_episode_ablation(
            workflow=montage(25, seed=3), budgets=(2, 5), seed=1
        )
        assert [r[0] for r in rows] == [2, 5]


class TestDefaultEpisodes:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EPISODES", "7")
        assert default_episodes() == 7

    def test_paper_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EPISODES", raising=False)
        assert default_episodes() == 100

    def test_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EPISODES", "0")
        with pytest.raises(ValueError):
            default_episodes()


class TestSensitivity:
    def test_rows_and_render(self):
        from repro.experiments.sensitivity import (
            render_sensitivity,
            run_seed_sensitivity,
        )
        from repro.workflows import montage

        rows = run_seed_sensitivity(
            workflow=montage(25, seed=3),
            vcpu_fleets=(16,),
            seeds=(1, 2),
            episodes=3,
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.vcpus == 16 and row.n_seeds == 2
        assert 0 <= row.reassign_wins <= 2
        assert 0.0 <= row.win_fraction <= 1.0
        assert row.heft_mean > 0 and row.reassign_mean > 0
        text = render_sensitivity(rows)
        assert "Seed sensitivity" in text and "±" in text
