"""Golden-trace equivalence and episode-reuse guarantees of the kernel.

The engine split (``docs/architecture.md``) promises three things, each
pinned here with *exact* float equality — same seed, same machine
arithmetic, same numbers:

1. **Trace equivalence** — the refactored engine reproduces the frozen
   pre-refactor traces bit for bit, across every behavioural regime the
   fixtures cover (static-plan replay, Q-learning episodes, stochastic
   retries/migrations/revocations, the parallel sweep plumbing).
2. **Reuse equivalence** — running episodes through one reused
   :class:`~repro.sim.kernel.EpisodeKernel` gives the same results as
   rebuilding a fresh simulator per run, including under hypothesis-
   generated seeds.
3. **Scrub on failure** — an exception escaping mid-episode (a broken
   scheduler, a deadlocked plan) leaves the kernel pristine: the next
   ``run_episode`` is unaffected.

If a change *intentionally* alters traces, regenerate the fixtures
(``PYTHONPATH=src python tests/golden/regen_traces.py``, see
``docs/runner.md``) and explain the drift in the commit message.
"""

import importlib.util
import json
import pathlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.environments import fleet_for
from repro.schedulers.online import GreedyOnlineScheduler
from repro.sim.failures import BernoulliFailures
from repro.sim.fluctuation import GaussianFluctuation
from repro.sim.kernel import EpisodeKernel, SimulationError
from repro.sim.simulator import WorkflowSimulator
from repro.workflows.montage import montage

GOLDEN = pathlib.Path(__file__).parent / "golden"

_spec = importlib.util.spec_from_file_location(
    "regen_traces", GOLDEN / "regen_traces.py"
)
regen = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(regen)


def load(name):
    return json.loads((GOLDEN / name).read_text(encoding="utf-8"))


class TestGoldenTraces:
    @pytest.mark.parametrize("fixture", regen.TRACE_FIXTURES)
    def test_fixture_exact(self, fixture):
        built = regen.normalize(regen.BUILDERS[fixture]())
        assert built == load(fixture), (
            f"{fixture} drifted from the frozen pre-refactor trace"
        )

    def test_sweep_fingerprint_worker_invariant(self):
        # the frozen fingerprint was produced with workers=1; a parallel
        # run must land on the identical bytes (runner seed plumbing)
        built = regen.normalize(regen.build_sweep_fingerprint(workers=4))
        assert built == load("montage25_sweep_fingerprint.json")


def _noisy_kernel():
    return EpisodeKernel(
        montage(25, seed=2),
        fleet_for(16),
        fluctuation=GaussianFluctuation(sigma=0.2),
        failures=BernoulliFailures(probability=0.15),
        max_attempts=5,
    )


def _noisy_facade(seed):
    return WorkflowSimulator(
        montage(25, seed=2),
        fleet_for(16),
        GreedyOnlineScheduler(),
        fluctuation=GaussianFluctuation(sigma=0.2),
        failures=BernoulliFailures(probability=0.15),
        max_attempts=5,
        seed=seed,
    )


class TestEpisodeReuse:
    def test_facade_matches_kernel(self):
        via_facade = _noisy_facade(9).run()
        via_kernel = _noisy_kernel().run_episode(GreedyOnlineScheduler(), 9)
        assert regen.result_dict(via_facade) == regen.result_dict(via_kernel)

    def test_facade_rerun_is_identical(self):
        sim = _noisy_facade(9)
        assert regen.result_dict(sim.run()) == regen.result_dict(sim.run())

    def test_different_seeds_differ(self):
        kernel = _noisy_kernel()
        scheduler = GreedyOnlineScheduler()
        a = kernel.run_episode(scheduler, 9)
        b = kernel.run_episode(scheduler, 10)
        assert regen.result_dict(a) != regen.result_dict(b)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_reused_kernel_matches_fresh_kernel(self, seed, reused_kernel):
        # the reused kernel has run arbitrarily many episodes before this
        # one; a fresh kernel runs it first — results must agree exactly
        scheduler = GreedyOnlineScheduler()
        fresh = _noisy_kernel().run_episode(scheduler, seed)
        reused = reused_kernel.run_episode(scheduler, seed)
        assert regen.result_dict(fresh) == regen.result_dict(reused)

    @pytest.fixture(scope="class")
    def reused_kernel(self):
        return _noisy_kernel()


class _DoNothingScheduler(GreedyOnlineScheduler):
    """Always picks the paper's *do nothing* action (deadlocks)."""

    def select(self, ctx):
        return None


class _ExplodingScheduler(GreedyOnlineScheduler):
    """Greedy until the Nth decision point, then raises."""

    def __init__(self, explode_after=3):
        super().__init__()
        self.explode_after = explode_after
        self.calls = 0

    def select(self, ctx):
        self.calls += 1
        if self.calls > self.explode_after:
            raise RuntimeError("scheduler blew up mid-episode")
        return super().select(ctx)


class TestScrubOnFailure:
    def test_exception_propagates(self):
        kernel = _noisy_kernel()
        with pytest.raises(RuntimeError, match="blew up"):
            kernel.run_episode(_ExplodingScheduler(), 9)

    def test_kernel_pristine_after_scheduler_crash(self):
        kernel = _noisy_kernel()
        with pytest.raises(RuntimeError):
            kernel.run_episode(_ExplodingScheduler(), 9)
        after_crash = kernel.run_episode(GreedyOnlineScheduler(), 9)
        fresh = _noisy_kernel().run_episode(GreedyOnlineScheduler(), 9)
        assert regen.result_dict(after_crash) == regen.result_dict(fresh)

    def test_kernel_pristine_after_simulation_error(self):
        # a scheduler that never dispatches deadlocks the event loop,
        # raising SimulationError from inside _run; the kernel must
        # still come back clean for the next episode
        kernel = _noisy_kernel()
        with pytest.raises(SimulationError, match="deadlocked"):
            kernel.run_episode(_DoNothingScheduler(), 9)
        after = kernel.run_episode(GreedyOnlineScheduler(), 9)
        fresh = _noisy_kernel().run_episode(GreedyOnlineScheduler(), 9)
        assert regen.result_dict(after) == regen.result_dict(fresh)
