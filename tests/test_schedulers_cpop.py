"""Tests for repro.schedulers.cpop — Critical-Path-on-a-Processor."""

import pytest

from repro.schedulers import CpopScheduler, HeftScheduler, PlanFollowingScheduler
from repro.schedulers.base import EstimateModel
from repro.schedulers.cpop import downward_ranks
from repro.schedulers.heft import upward_ranks
from repro.sim import WorkflowSimulator, ZeroCostNetwork
from repro.sim.vm import VM_TYPES, Vm, VmType
from repro.util.validate import ValidationError
from repro.dag import Workflow

from tests.conftest import make_activation


class TestDownwardRanks:
    def test_entries_are_zero(self, montage25, fleet16):
        ranks = downward_ranks(montage25, fleet16, EstimateModel())
        for entry in montage25.entries():
            assert ranks[entry] == 0.0

    def test_increases_along_edges(self, montage25, fleet16):
        ranks = downward_ranks(montage25, fleet16, EstimateModel())
        for parent, child in montage25.edges:
            assert ranks[child] > ranks[parent]

    def test_chain_accumulates(self, chain, fleet_small):
        ranks = downward_ranks(chain, fleet_small, EstimateModel())
        assert ranks[0] < ranks[1] < ranks[2] < ranks[3] < ranks[4]

    def test_priority_constant_on_critical_path(self, chain, fleet_small):
        # for a pure chain the whole graph is the critical path, so
        # rank_u + rank_d is constant up to communication terms (zero here)
        est = EstimateModel(latency=0.0, upload_outputs=False)
        up = upward_ranks(chain, fleet_small, est)
        down = downward_ranks(chain, fleet_small, est)
        priorities = {up[n] + down[n] for n in chain.activation_ids}
        lo, hi = min(priorities), max(priorities)
        assert hi - lo < 1e-6


class TestCpopPlan:
    def test_valid_and_executable(self, montage25, fleet16):
        plan = CpopScheduler().plan(montage25, fleet16)
        plan.validate_against(montage25, fleet16)
        result = WorkflowSimulator(
            montage25, fleet16, PlanFollowingScheduler(plan),
            network=ZeroCostNetwork(),
        ).run()
        assert result.succeeded
        assert result.assignment == plan.assignment

    def test_priority_topologically_consistent(self, montage25, fleet16):
        plan = CpopScheduler().plan(montage25, fleet16)
        pos = {n: i for i, n in enumerate(plan.priority)}
        for parent, child in montage25.edges:
            assert pos[parent] < pos[child]

    def test_critical_path_pinned_to_one_vm(self, chain, fleet_small):
        # for a chain, everything is on the critical path
        plan = CpopScheduler().plan(chain, fleet_small)
        assert len(set(plan.assignment.values())) == 1

    def test_cp_vm_is_fastest(self, chain):
        slow = Vm(0, VmType("slow", 1, 0.5, 1.0, 0.0))
        fast = Vm(1, VmType("fast", 1, 2.0, 1.0, 0.0))
        plan = CpopScheduler().plan(chain, [slow, fast])
        assert set(plan.assignment.values()) == {1}

    def test_competitive_with_heft(self, montage50, fleet16):
        def makespan(cls):
            plan = cls().plan(montage50, fleet16)
            return WorkflowSimulator(
                montage50, fleet16, PlanFollowingScheduler(plan),
                network=ZeroCostNetwork(),
            ).run().makespan

        assert makespan(CpopScheduler) <= makespan(HeftScheduler) * 1.25

    def test_deterministic(self, montage25, fleet16):
        a = CpopScheduler().plan(montage25, fleet16)
        b = CpopScheduler().plan(montage25, fleet16)
        assert a.assignment == b.assignment and a.priority == b.priority

    def test_empty_workflow_rejected(self, fleet_small):
        with pytest.raises(ValidationError):
            CpopScheduler().plan(Workflow("empty"), fleet_small)

    def test_capacity_aware_variant(self, montage25, fleet16):
        plan = CpopScheduler(single_slot_vms=False).plan(montage25, fleet16)
        plan.validate_against(montage25, fleet16)
        result = WorkflowSimulator(
            montage25, fleet16, PlanFollowingScheduler(plan),
            network=ZeroCostNetwork(),
        ).run()
        assert result.succeeded
