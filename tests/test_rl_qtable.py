"""Tests for repro.rl.qtable."""

import pytest

from repro.rl import QTable
from repro.util.rng import RngService
from repro.util.validate import ValidationError


class TestInitialization:
    def test_lazy_random_init(self):
        t = QTable(init_scale=1e-3, seed=1)
        v = t.value("s", ("a", 1))
        assert 0.0 <= v < 1e-3
        # stable on re-read
        assert t.value("s", ("a", 1)) == v

    def test_deterministic_given_seed(self):
        a = QTable(seed=5).value("s", "a")
        b = QTable(seed=5).value("s", "a")
        assert a == b

    def test_zero_scale_inits_zero(self):
        assert QTable(init_scale=0.0).value("s", "a") == 0.0

    def test_negative_scale_rejected(self):
        with pytest.raises(ValidationError):
            QTable(init_scale=-1.0)

    def test_peek_does_not_initialize(self):
        t = QTable()
        assert t.peek("s", "a") is None
        assert len(t) == 0


class TestUpdates:
    def test_set_and_add(self):
        t = QTable(init_scale=0.0)
        t.set("s", "a", 2.0)
        assert t.add("s", "a", 0.5) == 2.5
        assert t.value("s", "a") == 2.5

    def test_max_value(self):
        t = QTable(init_scale=0.0)
        t.set("s", "a", 1.0)
        t.set("s", "b", 3.0)
        assert t.max_value("s", ["a", "b"]) == 3.0

    def test_max_value_empty_actions_is_zero(self):
        # terminal-state convention
        t = QTable(init_scale=0.0)
        assert t.max_value("terminal", []) == 0.0

    def test_best_action(self):
        t = QTable(init_scale=0.0)
        t.set("s", "a", 1.0)
        t.set("s", "b", 3.0)
        assert t.best_action("s", ["a", "b"]) == "b"

    def test_best_action_tie_break_with_rng(self):
        t = QTable(init_scale=0.0)
        t.set("s", "a", 1.0)
        t.set("s", "b", 1.0)
        rng = RngService(0).stream("x")
        picks = {t.best_action("s", ["a", "b"], rng) for _ in range(50)}
        assert picks == {"a", "b"}

    def test_best_action_empty_rejected(self):
        with pytest.raises(ValidationError):
            QTable().best_action("s", [])


class TestPersistence:
    def test_json_round_trip(self):
        t = QTable(init_scale=0.0)
        t.set("available", (3, 8), 1.5)
        t.set("available", (0, 2), -0.5)
        back = QTable.from_json(t.to_json())
        assert back.value("available", (3, 8)) == 1.5
        assert back.value("available", (0, 2)) == -0.5

    def test_tuple_keys_survive(self):
        t = QTable(init_scale=0.0)
        t.set("s", (1, 2), 9.0)
        back = QTable.from_json(t.to_json())
        assert back.peek("s", (1, 2)) == 9.0  # lists decoded back to tuples

    def test_malformed_json(self):
        with pytest.raises(ValidationError):
            QTable.from_json("][")

    def test_items_sorted(self):
        t = QTable(init_scale=0.0)
        t.set("b", "y", 1.0)
        t.set("a", "x", 2.0)
        items = t.items()
        assert items[0][0] == "a"

    def test_copy_independent(self):
        t = QTable(init_scale=0.0)
        t.set("s", "a", 1.0)
        c = t.copy()
        c.set("s", "a", 5.0)
        assert t.value("s", "a") == 1.0
