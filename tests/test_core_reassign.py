"""Tests for repro.core — the ReASSIgN algorithm (Algorithm 2)."""

import pytest

from repro.core import (
    EpisodeRecord,
    LearningResult,
    ReassignLearner,
    ReassignParams,
    ReassignScheduler,
)
from repro.core.sweep import best_record, sweep_parameters
from repro.rl.qtable import QTable
from repro.sim import NoFluctuation, WorkflowSimulator, t2_fleet
from repro.util.validate import ValidationError
from repro.workflows import montage


@pytest.fixture
def params():
    return ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=15)


class TestParams:
    def test_paper_defaults(self):
        p = ReassignParams()
        assert p.mu == 0.5 and p.episodes == 100

    def test_validation(self):
        with pytest.raises(ValidationError):
            ReassignParams(alpha=0.0)
        with pytest.raises(ValidationError):
            ReassignParams(gamma=1.5)
        with pytest.raises(ValidationError):
            ReassignParams(episodes=0)
        with pytest.raises(ValidationError):
            ReassignParams(rule="dqn")

    def test_label(self):
        assert ReassignParams(0.1, 1.0, 0.5).label() == "a=0.1 g=1 e=0.5"

    def test_frozen(self, params):
        with pytest.raises(AttributeError):
            params.alpha = 0.9  # type: ignore[misc]


class TestSchedulerEpisode:
    def test_single_episode_completes(self, montage25, fleet16, params):
        sched = ReassignScheduler(params, seed=1)
        result = WorkflowSimulator(montage25, fleet16, sched, seed=0).run()
        assert result.succeeded
        assert sched.episode_steps == 25
        assert -1.0 <= sched.episode_mean_reward <= 1.0

    def test_qtable_grows(self, montage25, fleet16, params):
        sched = ReassignScheduler(params, seed=1)
        WorkflowSimulator(montage25, fleet16, sched, seed=0).run()
        assert len(sched.qtable) > 0

    def test_learning_off_freezes_qtable(self, montage25, fleet16, params):
        table = QTable(init_scale=0.0, seed=1)
        table.set("available", (0, 0), 5.0)
        before = table.to_json()
        sched = ReassignScheduler(params, qtable=table, seed=1, learning=False)
        WorkflowSimulator(montage25, fleet16, sched, seed=0).run()
        # greedy replay reads but never writes persisted values
        assert {k: v for _, k, v in []} is not None
        after_items = dict(((s, a), v) for s, a, v in table.items())
        assert after_items[("available", (0, 0))] == 5.0

    def test_greedy_mode_uses_epsilon_one(self, params):
        sched = ReassignScheduler(params, seed=1, learning=False)
        assert sched.policy.epsilon == 1.0


class TestLearner:
    def test_learning_improves_over_first_episode(self, fleet16):
        wf = montage(50, seed=1)
        p = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=60)
        result = ReassignLearner(wf, fleet16, p, seed=11).learn()
        assert result.simulated_makespan < result.episodes[0].makespan

    def test_result_shape(self, montage25, fleet16, params):
        result = ReassignLearner(montage25, fleet16, params, seed=2).learn()
        assert result.n_episodes == params.episodes
        assert result.learning_time > 0
        assert result.simulated_makespan > 0
        result.plan.validate_against(montage25, fleet16)

    def test_plan_executable(self, montage25, fleet16, params):
        from repro.schedulers import PlanFollowingScheduler

        result = ReassignLearner(montage25, fleet16, params, seed=2).learn()
        replay = WorkflowSimulator(
            montage25, fleet16, PlanFollowingScheduler(result.plan), seed=0
        ).run()
        assert replay.succeeded

    def test_deterministic_given_seed(self, montage25, fleet16, params):
        a = ReassignLearner(montage25, fleet16, params, seed=3).learn()
        b = ReassignLearner(montage25, fleet16, params, seed=3).learn()
        assert a.plan.assignment == b.plan.assignment
        assert a.makespan_curve() == b.makespan_curve()

    def test_seed_changes_learning(self, montage25, fleet16, params):
        a = ReassignLearner(montage25, fleet16, params, seed=3).learn()
        b = ReassignLearner(montage25, fleet16, params, seed=4).learn()
        assert a.makespan_curve() != b.makespan_curve()

    def test_prior_qtable_resumes(self, montage25, fleet16, params):
        first = ReassignLearner(montage25, fleet16, params, seed=5).learn()
        resumed = ReassignLearner(
            montage25, fleet16, params, seed=5,
            prior_qtable_json=first.qtable_json,
            prior_history=[(0, 10.0, 1.0)],
        )
        # the resumed learner starts from the previous table
        assert len(resumed.scheduler.qtable) > 0
        assert resumed.scheduler.reward.vm_index(0) > 0
        result = resumed.learn()
        assert result.n_episodes == params.episodes

    @pytest.mark.parametrize("rule", ["qlearning", "sarsa", "doubleq"])
    def test_all_rules_learn(self, montage25, fleet16, rule):
        p = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1,
                           episodes=10, rule=rule)
        result = ReassignLearner(montage25, fleet16, p, seed=6).learn()
        assert result.simulated_makespan > 0
        QTable.from_json(result.qtable_json)  # persisted table re-loadable

    def test_custom_fluctuation_accepted(self, montage25, fleet16, params):
        result = ReassignLearner(
            montage25, fleet16, params, seed=7, fluctuation=NoFluctuation()
        ).learn()
        assert result.simulated_makespan > 0


class TestEpisodeRecords:
    def test_round_trip(self):
        rec = EpisodeRecord(
            episode=3, makespan=120.5, final_state="successfully finished",
            steps=25, mean_reward=0.4, final_reward=0.8,
            assignment={0: 8, 1: 2},
        )
        back = EpisodeRecord.from_dict(rec.to_dict())
        assert back == rec

    def test_learning_result_round_trip(self, montage25, fleet16, params):
        result = ReassignLearner(montage25, fleet16, params, seed=2).learn()
        back = LearningResult.from_json(result.to_json())
        assert back.plan.assignment == result.plan.assignment
        assert back.makespan_curve() == result.makespan_curve()
        assert back.learning_time == result.learning_time

    def test_best_episode_prefers_success(self):
        episodes = [
            EpisodeRecord(0, 100.0, "finished with failure", 10, 0.0, 0.0),
            EpisodeRecord(1, 200.0, "successfully finished", 10, 0.0, 0.0),
        ]
        result = LearningResult(
            plan=__import__("repro.schedulers", fromlist=["SchedulingPlan"])
            .SchedulingPlan(assignment={0: 0}),
            episodes=episodes,
            learning_time=1.0,
            simulated_makespan=200.0,
            qtable_json=QTable().to_json(),
        )
        assert result.best_episode.episode == 1

    def test_empty_episodes_rejected(self):
        from repro.schedulers import SchedulingPlan

        with pytest.raises(ValidationError):
            LearningResult(
                plan=SchedulingPlan(assignment={0: 0}),
                episodes=[],
                learning_time=1.0,
                simulated_makespan=1.0,
                qtable_json="{}",
            )


class TestSweep:
    def test_grid_covers_combinations(self, montage25, fleet_small):
        records = sweep_parameters(
            montage25, fleet_small,
            alphas=(0.5,), gammas=(0.1, 1.0), epsilons=(0.1, 1.0),
            episodes=3, seed=1,
        )
        assert len(records) == 4
        assert {(r.gamma, r.epsilon) for r in records} == {
            (0.1, 0.1), (0.1, 1.0), (1.0, 0.1), (1.0, 1.0)
        }

    def test_best_record(self, montage25, fleet_small):
        records = sweep_parameters(
            montage25, fleet_small,
            alphas=(0.5,), gammas=(1.0,), epsilons=(0.1, 1.0),
            episodes=3, seed=1,
        )
        best = best_record(records)
        assert best.simulated_makespan == min(
            r.simulated_makespan for r in records
        )

    def test_empty_grid_rejected(self, montage25, fleet_small):
        with pytest.raises(ValidationError):
            sweep_parameters(montage25, fleet_small, alphas=())

    def test_best_record_empty_rejected(self):
        with pytest.raises(ValidationError):
            best_record([])


class TestStateBuckets:
    def test_bucket_labels_used(self, montage25, fleet16):
        params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1,
                                episodes=3, state_buckets=4)
        learner = ReassignLearner(montage25, fleet16, params, seed=2)
        learner.learn()
        states = {s for s, _, _ in learner.scheduler.qtable.items()}
        assert any(str(s).startswith("available:p") for s in states)

    def test_single_bucket_is_paper_state(self, montage25, fleet16):
        params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1,
                                episodes=3, state_buckets=1)
        learner = ReassignLearner(montage25, fleet16, params, seed=2)
        learner.learn()
        states = {s for s, _, _ in learner.scheduler.qtable.items()}
        assert states == {"available"}

    def test_bucket_count_validated(self):
        with pytest.raises(ValidationError):
            ReassignParams(state_buckets=0)

    def test_buckets_learn_successfully(self, montage25, fleet16):
        params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1,
                                episodes=5, state_buckets=8)
        result = ReassignLearner(montage25, fleet16, params, seed=2).learn()
        assert result.simulated_makespan > 0
        result.plan.validate_against(montage25, fleet16)


class TestRewardMemory:
    def test_full_is_default(self):
        assert ReassignParams().reward_memory == "full"

    def test_invalid_rejected(self):
        with pytest.raises(ValidationError):
            ReassignParams(reward_memory="sliding")

    def test_episode_memory_resets_history(self, montage25, fleet16):
        params = ReassignParams(episodes=3, reward_memory="episode")
        learner = ReassignLearner(montage25, fleet16, params, seed=2)
        learner.learn()
        # after the final episode, each VM's history holds at most one
        # episode's worth of observations
        reward = learner.scheduler.reward
        total = sum(n for _, n, _ in reward.snapshot())
        assert total <= len(montage25)

    def test_full_memory_accumulates(self, montage25, fleet16):
        params = ReassignParams(episodes=3, reward_memory="full")
        learner = ReassignLearner(montage25, fleet16, params, seed=2)
        learner.learn()
        reward = learner.scheduler.reward
        total = sum(n for _, n, _ in reward.snapshot())
        assert total == 3 * len(montage25)


class TestExtractPlan:
    def test_greedy_extraction_valid(self, montage25, fleet16, params):
        learner = ReassignLearner(montage25, fleet16, params, seed=2)
        learner.learn()
        plan, makespan = learner.extract_plan()
        plan.validate_against(montage25, fleet16)
        assert makespan > 0

    def test_greedy_extraction_deterministic(self, montage25, fleet16, params):
        learner = ReassignLearner(montage25, fleet16, params, seed=2)
        learner.learn()
        a = learner.extract_plan()
        b = learner.extract_plan()
        assert a[0].assignment == b[0].assignment
        assert a[1] == b[1]

    def test_reward_curve_length(self, montage25, fleet16, params):
        result = ReassignLearner(montage25, fleet16, params, seed=2).learn()
        curve = result.reward_curve()
        assert len(curve) == params.episodes
        assert all(-1.0 <= r <= 1.0 for r in curve)
