"""Tests for repro.schedulers.budget — budget-constrained planning."""

import pytest

from repro.schedulers import BudgetConstrainedScheduler, PlanFollowingScheduler
from repro.schedulers.budget import cheapest_plan_cost, heft_plan_cost
from repro.sim import WorkflowSimulator, ZeroCostNetwork
from repro.util.validate import ValidationError


def plan_usage_cost(wf, fleet, plan):
    result = WorkflowSimulator(
        wf, fleet, PlanFollowingScheduler(plan), network=ZeroCostNetwork()
    ).run()
    return result.usage_cost(), result.makespan


class TestCostBounds:
    def test_cheapest_below_heft(self, montage25, fleet16):
        assert (cheapest_plan_cost(montage25, fleet16)
                <= heft_plan_cost(montage25, fleet16))

    def test_cheapest_uses_micro_prices(self, montage25, fleet16):
        # with equal speeds, the cheapest plan is all-micro: cost =
        # total duration x micro hourly price
        cost = cheapest_plan_cost(montage25, fleet16)
        assert cost > 0
        plan = BudgetConstrainedScheduler(budget_factor=0.0).plan(
            montage25, fleet16
        )
        assert all(v < 8 for v in plan.assignment.values())  # no 2xlarge


class TestBudgetPlans:
    def test_zero_factor_cheapest(self, montage25, fleet16):
        plan = BudgetConstrainedScheduler(budget_factor=0.0).plan(
            montage25, fleet16
        )
        plan.validate_against(montage25, fleet16)
        cost, _ = plan_usage_cost(montage25, fleet16, plan)
        # realized usage cost close to the cheapest estimate
        assert cost <= cheapest_plan_cost(montage25, fleet16) * 1.5

    def test_factor_one_matches_heft_quality(self, montage25, fleet16):
        from repro.schedulers import HeftScheduler

        budgeted = BudgetConstrainedScheduler(budget_factor=1.0).plan(
            montage25, fleet16
        )
        heft = HeftScheduler().plan(montage25, fleet16)
        _, mk_budgeted = plan_usage_cost(montage25, fleet16, budgeted)
        _, mk_heft = plan_usage_cost(montage25, fleet16, heft)
        assert mk_budgeted <= mk_heft * 1.10

    def test_pareto_monotonicity(self, montage50, fleet16):
        """More budget never hurts makespan (within tolerance) and less
        budget never raises cost."""
        points = []
        for factor in (0.0, 0.5, 1.0):
            plan = BudgetConstrainedScheduler(budget_factor=factor).plan(
                montage50, fleet16
            )
            cost, makespan = plan_usage_cost(montage50, fleet16, plan)
            points.append((factor, cost, makespan))
        costs = [c for _, c, _ in points]
        makespans = [m for _, _, m in points]
        assert costs[0] <= costs[1] * 1.05 and costs[1] <= costs[2] * 1.05
        assert makespans[2] <= makespans[0] * 1.05

    def test_explicit_budget_respected(self, montage25, fleet16):
        sched = BudgetConstrainedScheduler(budget_factor=0.3)
        budget = sched.resolve_budget(montage25, fleet16)
        plan = sched.plan(montage25, fleet16)
        cost, _ = plan_usage_cost(montage25, fleet16, plan)
        # realized cost tracks the planned budget (estimates are nominal,
        # allow modest slack)
        assert cost <= budget * 1.25

    def test_infeasible_budget_rejected(self, montage25, fleet16):
        with pytest.raises(ValidationError):
            BudgetConstrainedScheduler(budget=0.0000001).plan(
                montage25, fleet16
            )

    def test_executes_successfully(self, montage25, fleet16):
        plan = BudgetConstrainedScheduler(budget_factor=0.5).plan(
            montage25, fleet16
        )
        result = WorkflowSimulator(
            montage25, fleet16, PlanFollowingScheduler(plan),
            network=ZeroCostNetwork(),
        ).run()
        assert result.succeeded

    def test_priority_topologically_consistent(self, montage25, fleet16):
        plan = BudgetConstrainedScheduler(budget_factor=0.5).plan(
            montage25, fleet16
        )
        pos = {n: i for i, n in enumerate(plan.priority)}
        for parent, child in montage25.edges:
            assert pos[parent] < pos[child]

    def test_negative_budget_rejected(self):
        with pytest.raises(ValidationError):
            BudgetConstrainedScheduler(budget=-1.0)
