"""Tests for repro.util.rng — deterministic stream management."""

import numpy as np
import pytest

from repro.util.rng import RngService, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_varies_with_name(self):
        assert derive_seed(42, "x") != derive_seed(42, "y")

    def test_varies_with_seed(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_in_63_bit_range(self):
        for name in ("a", "b", "c"):
            s = derive_seed(123456789, name)
            assert 0 <= s < 2**63

    def test_not_order_sensitive(self):
        # the derived seed only depends on (seed, name)
        a = derive_seed(7, "later")
        derive_seed(7, "first")
        assert derive_seed(7, "later") == a


class TestRngService:
    def test_same_seed_same_stream(self):
        a = RngService(5).stream("policy").random(10)
        b = RngService(5).stream("policy").random(10)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        svc = RngService(5)
        a = svc.stream("a").random(10)
        b = svc.stream("b").random(10)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        svc = RngService(5)
        assert svc.stream("x") is svc.stream("x")

    def test_request_order_does_not_matter(self):
        s1 = RngService(9)
        s1.stream("first").random()
        v1 = s1.stream("second").random()
        s2 = RngService(9)
        v2 = s2.stream("second").random()
        assert v1 == v2

    def test_reset_single(self):
        svc = RngService(5)
        first = svc.stream("x").random()
        svc.reset("x")
        assert svc.stream("x").random() == first

    def test_reset_all(self):
        svc = RngService(5)
        first = svc.stream("x").random()
        svc.stream("y").random()
        svc.reset()
        assert svc.stream("x").random() == first

    def test_child_is_independent_service(self):
        svc = RngService(5)
        child = svc.child("ep0")
        assert isinstance(child, RngService)
        assert child.seed != svc.seed
        # deterministic
        assert RngService(5).child("ep0").seed == child.seed

    def test_spawn_seed_matches_derivation(self):
        svc = RngService(5)
        assert svc.spawn_seed("foo") == derive_seed(5, "foo")

    def test_seed_property(self):
        assert RngService(17).seed == 17

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            RngService("42")  # type: ignore[arg-type]

    def test_rejects_empty_stream_name(self):
        with pytest.raises(ValueError):
            RngService(0).stream("")
