"""Tests for the list-scheduling heuristics and online schedulers."""

import pytest

from repro.schedulers import (
    FcfsScheduler,
    GreedyOnlineScheduler,
    HeftScheduler,
    MaxMinScheduler,
    MctScheduler,
    MinMinScheduler,
    OlbScheduler,
    PlanFollowingScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SufferageScheduler,
)
from repro.schedulers.timeline import SlotTimeline
from repro.sim import WorkflowSimulator, ZeroCostNetwork
from repro.util.validate import ValidationError

ALL_STATIC = [
    HeftScheduler,
    MinMinScheduler,
    MaxMinScheduler,
    SufferageScheduler,
    MctScheduler,
    OlbScheduler,
]


class TestSlotTimeline:
    def test_append(self):
        t = SlotTimeline()
        assert t.earliest_start(0.0, 5.0) == 0.0
        t.reserve(0.0, 5.0)
        assert t.ready_time == 5.0
        assert t.earliest_start(0.0, 3.0, insertion=False) == 5.0

    def test_insertion_finds_gap(self):
        t = SlotTimeline()
        t.reserve(0.0, 2.0)
        t.reserve(10.0, 2.0)
        assert t.earliest_start(0.0, 5.0) == 2.0  # gap [2, 10)
        assert t.earliest_start(0.0, 9.0) == 12.0  # too long for the gap

    def test_insertion_respects_release(self):
        t = SlotTimeline()
        t.reserve(0.0, 2.0)
        t.reserve(10.0, 2.0)
        assert t.earliest_start(5.0, 3.0) == 5.0

    def test_overlap_rejected(self):
        t = SlotTimeline()
        t.reserve(0.0, 5.0)
        with pytest.raises(ValidationError):
            t.reserve(3.0, 1.0)
        with pytest.raises(ValidationError):
            t.reserve(4.9, 10.0)

    def test_zero_duration_ok(self):
        t = SlotTimeline()
        t.reserve(1.0, 0.0)
        assert len(t) == 1


class TestStaticPlanners:
    @pytest.mark.parametrize("cls", ALL_STATIC)
    def test_plan_valid_and_executable(self, cls, montage25, fleet16):
        plan = cls().plan(montage25, fleet16)
        plan.validate_against(montage25, fleet16)
        result = WorkflowSimulator(
            montage25, fleet16, PlanFollowingScheduler(plan),
            network=ZeroCostNetwork(),
        ).run()
        assert result.succeeded
        assert result.assignment == plan.assignment

    @pytest.mark.parametrize("cls", ALL_STATIC)
    def test_deterministic(self, cls, montage25, fleet16):
        assert (cls().plan(montage25, fleet16).assignment
                == cls().plan(montage25, fleet16).assignment)

    @pytest.mark.parametrize("cls", ALL_STATIC)
    def test_priority_topologically_consistent(self, cls, montage25, fleet16):
        plan = cls().plan(montage25, fleet16)
        pos = {n: i for i, n in enumerate(plan.priority)}
        for p, c in montage25.edges:
            assert pos[p] < pos[c]

    def test_minmin_schedules_short_tasks_first(self, fork_join, fleet_small):
        plan = MinMinScheduler().plan(fork_join, fleet_small)
        # entry (runtime 3) first, then the 10s middles, exit last
        assert plan.priority[0] == 0 and plan.priority[-1] == 7

    def test_heuristics_beat_olb_on_montage(self, montage50, fleet16):
        def makespan(cls):
            plan = cls().plan(montage50, fleet16)
            return WorkflowSimulator(
                montage50, fleet16, PlanFollowingScheduler(plan),
                network=ZeroCostNetwork(),
            ).run().makespan

        olb = makespan(OlbScheduler)
        for cls in (MinMinScheduler, MaxMinScheduler, SufferageScheduler,
                    MctScheduler):
            assert makespan(cls) <= olb * 1.2


class TestOnlineSchedulers:
    @pytest.mark.parametrize("factory", [
        FcfsScheduler,
        RoundRobinScheduler,
        lambda: RandomScheduler(seed=4),
        GreedyOnlineScheduler,
    ])
    def test_complete_workflow(self, factory, montage25, fleet16):
        result = WorkflowSimulator(
            montage25, fleet16, factory(), network=ZeroCostNetwork()
        ).run()
        assert result.succeeded
        assert len(result.records) == 25

    def test_fcfs_prefers_earliest_ready(self, diamond, fleet_small):
        result = WorkflowSimulator(
            diamond, fleet_small, FcfsScheduler(), network=ZeroCostNetwork()
        ).run()
        assert result.succeeded

    def test_random_deterministic_with_seed(self, montage25, fleet16):
        a = WorkflowSimulator(montage25, fleet16, RandomScheduler(seed=4),
                              network=ZeroCostNetwork()).run()
        b = WorkflowSimulator(montage25, fleet16, RandomScheduler(seed=4),
                              network=ZeroCostNetwork()).run()
        assert a.assignment == b.assignment

    def test_greedy_beats_random(self, montage50, fleet16):
        greedy = WorkflowSimulator(
            montage50, fleet16, GreedyOnlineScheduler(),
            network=ZeroCostNetwork(),
        ).run()
        rand = WorkflowSimulator(
            montage50, fleet16, RandomScheduler(seed=4),
            network=ZeroCostNetwork(),
        ).run()
        assert greedy.makespan <= rand.makespan

    def test_round_robin_spreads(self, fork_join, fleet16):
        result = WorkflowSimulator(
            fork_join, fleet16, RoundRobinScheduler(),
            network=ZeroCostNetwork(),
        ).run()
        used = {r.vm_id for r in result.records}
        assert len(used) >= 4
