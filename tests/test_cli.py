"""Tests for repro.cli — the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.schedulers import SchedulingPlan


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_workflow_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workflow", "--workflow", "nope"])

    def test_vcpus_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--vcpus", "48"])


class TestWorkflowCommand:
    def test_profile_printed(self, capsys):
        assert main(["workflow", "--workflow", "montage", "--size", "25"]) == 0
        out = capsys.readouterr().out
        assert "montage-25" in out and "critical path" in out

    def test_dax_export(self, tmp_path, capsys):
        path = tmp_path / "wf.dax"
        assert main(["workflow", "--size", "25", "--dax", str(path)]) == 0
        from repro.dag import parse_dax_file

        assert len(parse_dax_file(path)) == 25

    def test_xml_export(self, tmp_path):
        path = tmp_path / "wf.xml"
        assert main(["workflow", "--size", "25", "--xml", str(path)]) == 0
        from repro.scicumulus import workflow_from_xml

        assert len(workflow_from_xml(path.read_text())) == 25


class TestSimulateCommand:
    @pytest.mark.parametrize("scheduler", ["heft", "minmin", "fcfs", "greedy"])
    def test_schedulers_run(self, scheduler, capsys):
        rc = main(["simulate", "--scheduler", scheduler, "--size", "25"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "successfully finished" in out

    def test_gantt_flag(self, capsys):
        main(["simulate", "--size", "25", "--gantt"])
        assert "vm0" in capsys.readouterr().out


class TestLearnCommand:
    def test_learn_and_save_plan(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        rc = main([
            "learn", "--size", "25", "--episodes", "3",
            "--plan-out", str(plan_path),
        ])
        assert rc == 0
        plan = SchedulingPlan.from_json(plan_path.read_text())
        assert len(plan.assignment) == 25
        assert "plan makespan" in capsys.readouterr().out


class TestPipelineCommand:
    def test_reassign_pipeline(self, capsys):
        rc = main(["pipeline", "--size", "25", "--episodes", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "execution time" in out and "ReASSIgN" in out

    def test_heft_pipeline_with_provenance(self, tmp_path, capsys):
        db = tmp_path / "prov.db"
        rc = main([
            "pipeline", "--size", "25", "--scheduler", "heft",
            "--provenance", str(db),
        ])
        assert rc == 0
        from repro.scicumulus import ProvenanceStore

        with ProvenanceStore(db) as store:
            assert len(store.executions()) == 1


class TestTableCommand:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_table5_small(self, capsys):
        assert main(["table", "5", "--episodes", "2"]) == 0
        assert "Table V" in capsys.readouterr().out


class TestActorsFlag:
    """The --actors/--batch/--workers interplay, validated centrally."""

    def test_actors_rejects_bad_values(self, capsys):
        for bad in ("0", "-3", "two"):
            with pytest.raises(SystemExit):
                main(["learn", "--actors", bad])
            assert "actors must be" in capsys.readouterr().err

    def test_actors_and_batch_compose(self, capsys):
        rc = main(["learn", "--size", "15", "--episodes", "4",
                   "--actors", "2", "--batch", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "batch=2" in out

    def test_actors_and_workers_mutually_exclusive(self, capsys):
        for cmd in ("sweep", "ensemble"):
            with pytest.raises(SystemExit):
                main([cmd, "--actors", "2", "--workers", "2"])
            assert "--workers" in capsys.readouterr().err

    def test_actors_with_explicit_batch_1_allowed(self, capsys):
        rc = main(["learn", "--size", "15", "--episodes", "2",
                   "--actors", "2", "--batch", "1"])
        assert rc == 0
        assert "actors" in capsys.readouterr().out

    def test_learn_with_actors_matches_serial(self, capsys):
        argv = ["learn", "--size", "15", "--episodes", "3", "--seed", "5"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--actors", "2"]) == 0
        actors_out = capsys.readouterr().out
        pick = lambda text: [  # noqa: E731 - tiny local filter
            line for line in text.splitlines()
            if line.startswith(("first episode", "best episode",
                                "plan makespan"))
        ]
        assert pick(actors_out) == pick(serial_out)
        assert "mode=" in actors_out

    def test_learn_with_actors_and_batch_matches_serial(self, capsys):
        argv = ["learn", "--size", "15", "--episodes", "6", "--seed", "5"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--actors", "2", "--batch", "3"]) == 0
        pair_out = capsys.readouterr().out
        pick = lambda text: [  # noqa: E731 - tiny local filter
            line for line in text.splitlines()
            if line.startswith(("first episode", "best episode",
                                "plan makespan"))
        ]
        assert pick(pair_out) == pick(serial_out)
        assert "batch=3" in pair_out


class TestReproduceCommand:
    def test_reproduce_writes_artifacts(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EPISODES", "2")
        rc = main(["reproduce", "--out", str(tmp_path), "--episodes", "2"])
        assert rc == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert "REPORT.md" in names
        for artifact in ("table1.txt", "tables2_3.txt", "table4.txt",
                         "table5.txt", "figure1.txt",
                         "characterization.txt", "ablations.txt"):
            assert artifact in names
        out = capsys.readouterr().out
        assert "reproduction report" in out
