"""Tests for the tabular agents on toy MDPs: Q-learning, SARSA, Double-Q."""

import pytest

from repro.rl import (
    DoubleQAgent,
    EpsilonGreedyPolicy,
    QLearningAgent,
    SarsaAgent,
)
from repro.rl.environment import DiscreteEnv
from repro.rl.toy import ChainEnv, TwoArmBandit
from repro.util.validate import ValidationError


def greedy_policy_is_right(agent, n=5):
    return all(
        agent.greedy_action(s, ["left", "right"]) == "right" for s in range(n)
    )


class TestQLearningAgent:
    def test_learns_chain(self):
        agent = QLearningAgent(alpha=0.5, gamma=0.9, discount_power=False,
                               policy=EpsilonGreedyPolicy(0.3), seed=1)
        agent.train(ChainEnv(), episodes=300)
        assert greedy_policy_is_right(agent)

    def test_learns_bandit(self):
        agent = QLearningAgent(alpha=0.5, gamma=1.0, seed=2)
        agent.train(TwoArmBandit(), episodes=100)
        assert agent.greedy_action("s", ["good", "bad"]) == "good"
        assert agent.qtable.value("s", "good") == pytest.approx(1.0, abs=0.01)

    def test_bandit_q_converges_to_reward(self):
        agent = QLearningAgent(alpha=1.0, gamma=1.0, seed=2)
        agent.train(TwoArmBandit(), episodes=50)
        # terminal next state has value 0, so Q == immediate reward
        assert agent.qtable.value("s", "good") == pytest.approx(1.0)

    def test_history_recorded(self):
        agent = QLearningAgent(seed=1)
        stats = agent.train(TwoArmBandit(), episodes=10)
        assert len(stats) == 10 == len(agent.history)
        assert all(s.steps == 1 for s in stats)

    def test_discount_power_kills_future(self):
        # gamma^t with gamma=0.1 -> future term ~0 after a couple of steps
        agent = QLearningAgent(alpha=0.5, gamma=0.1, discount_power=True, seed=1)
        assert agent.effective_gamma(1) == pytest.approx(0.1)
        assert agent.effective_gamma(3) == pytest.approx(1e-3)

    def test_constant_discount_flag(self):
        agent = QLearningAgent(gamma=0.5, discount_power=False)
        assert agent.effective_gamma(10) == 0.5

    def test_nonterminating_env_raises(self):
        class Loop(DiscreteEnv):
            def reset(self):
                return 0

            def actions(self, state):
                return ["spin"]

            def step(self, action):
                return 0, 0.0, False

        agent = QLearningAgent(max_steps=50, seed=1)
        with pytest.raises(ValidationError):
            agent.run_episode(Loop())

    def test_zero_alpha_rejected(self):
        with pytest.raises(ValidationError):
            QLearningAgent(alpha=0.0)

    def test_zero_episodes_rejected(self):
        with pytest.raises(ValidationError):
            QLearningAgent().train(TwoArmBandit(), episodes=0)


class TestSarsaAgent:
    def test_learns_chain(self):
        agent = SarsaAgent(alpha=0.5, gamma=0.9, discount_power=False,
                           policy=EpsilonGreedyPolicy(0.5), seed=3)
        agent.train(ChainEnv(), episodes=400)
        assert greedy_policy_is_right(agent)

    def test_learns_bandit(self):
        agent = SarsaAgent(alpha=0.5, gamma=1.0, seed=4)
        agent.train(TwoArmBandit(), episodes=100)
        assert agent.greedy_action("s", ["good", "bad"]) == "good"

    def test_on_policy_target_differs_from_q(self):
        """On a stochastic policy, SARSA's Q('s') for the chain's first
        state is pulled down by exploratory 'left' moves relative to
        Q-learning — just verify both learn and histories differ."""
        q = QLearningAgent(alpha=0.3, gamma=0.9, discount_power=False, seed=5)
        s = SarsaAgent(alpha=0.3, gamma=0.9, discount_power=False, seed=5)
        q.train(ChainEnv(), episodes=100)
        s.train(ChainEnv(), episodes=100)
        assert q.qtable.value(0, "right") != s.qtable.value(0, "right")


class TestDoubleQAgent:
    def test_learns_bandit(self):
        agent = DoubleQAgent(alpha=0.5, gamma=1.0, seed=6)
        agent.train(TwoArmBandit(), episodes=200)
        assert agent.greedy_action("s", ["good", "bad"]) == "good"

    def test_learns_chain(self):
        agent = DoubleQAgent(alpha=0.5, gamma=0.9, discount_power=False,
                             policy=EpsilonGreedyPolicy(0.3), seed=7)
        agent.train(ChainEnv(), episodes=500)
        assert greedy_policy_is_right(agent)

    def test_two_tables_updated(self):
        agent = DoubleQAgent(alpha=0.5, seed=8)
        agent.train(TwoArmBandit(), episodes=50)
        assert len(agent.qtable_a) > 0
        assert len(agent.qtable_b) > 0

    def test_view_sums_tables(self):
        agent = DoubleQAgent(seed=9)
        agent.qtable_a.set("s", "a", 1.0)
        agent.qtable_b.set("s", "a", 2.0)
        assert agent.qtable.value("s", "a") == pytest.approx(3.0)
