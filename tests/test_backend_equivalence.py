"""Fast-path equivalence suite: array backend == dict backend, bitwise.

The dense ``backend="array"`` Q-table and the versioned action-pair
cache are pure performance work — PR-level contract: **no float ever
differs**.  Three layers of evidence:

- a property test drives both backends through the same random op
  interleaving and demands identical returns plus byte-identical
  ``to_json()`` (first-touch draws happen in the same RNG order even
  though the array backend batch-initializes rows);
- a full learning run on Montage-25 must match across backends on the
  Q-table JSON, every per-episode record, and the emitted plan;
- the kernel-caching parallel runner must stay bit-identical between
  ``workers=1`` and ``workers=4``, with the per-process cache provably
  building each distinct kernel once.
"""

from hypothesis import given, settings, strategies as st

from repro.core.reassign import ReassignLearner, ReassignParams
from repro.core.sweep import sweep_tasks
from repro.experiments.environments import fleet_for
from repro.rl import QTable
from repro.runner import ParallelRunner
from repro.runner.parallel import clear_kernel_cache, kernel_cache_stats
from repro.util.rng import RngService
from repro.workflows.montage import montage

# (op, state index, action index, value) — indices keep the key space
# small enough that interleavings actually collide on rows.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["value", "add", "set", "max_value", "best_action"]),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=6),
        st.floats(min_value=-8.0, max_value=8.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=50,
)


def _apply(table, rng, op, state_idx, action_idx, value):
    state = f"s{state_idx}"
    action = (action_idx, action_idx + 1)
    # a stable slice of the action space, so max/best see 1..7 actions
    actions = [(k, k + 1) for k in range(action_idx + 1)]
    if op == "value":
        return table.value(state, action)
    if op == "add":
        return table.add(state, action, value)
    if op == "set":
        table.set(state, action, value)
        return None
    if op == "max_value":
        return table.max_value(state, actions)
    return table.best_action(state, actions, rng)


class TestQTableBackendEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1), ops=_OPS)
    def test_interleaved_ops_bit_identical(self, seed, ops):
        array = QTable(init_scale=1e-3, seed=seed, backend="array")
        plain = QTable(init_scale=1e-3, seed=seed, backend="dict")
        rng_a = RngService(seed).stream("tie")
        rng_d = RngService(seed).stream("tie")
        for op, state_idx, action_idx, value in ops:
            got_a = _apply(array, rng_a, op, state_idx, action_idx, value)
            got_d = _apply(plain, rng_d, op, state_idx, action_idx, value)
            assert got_a == got_d, (op, state_idx, action_idx, value)
        assert array.items() == plain.items()
        assert array.to_json() == plain.to_json()

    def test_wide_action_set_uses_same_floats(self):
        # crosses the scalar-reduction threshold into the numpy branch
        actions = [(k, k + 1) for k in range(64)]
        array = QTable(init_scale=1e-3, seed=3, backend="array")
        plain = QTable(init_scale=1e-3, seed=3, backend="dict")
        assert array.max_value("s", actions) == plain.max_value("s", actions)
        assert array.best_action("s", actions) == plain.best_action("s", actions)
        assert array.to_json() == plain.to_json()

    def test_json_round_trip_crosses_backends(self):
        array = QTable(init_scale=1e-3, seed=9, backend="array")
        array.set("s", (1, 2), 4.5)
        array.value("s", (3, 4))  # lazily initialized entry survives too
        back = QTable.from_json(array.to_json(), backend="dict")
        assert back.to_json() == array.to_json()


class TestLearnerBackendEquivalence:
    def test_learning_run_bit_identical(self):
        results = {}
        for backend in ("array", "dict"):
            learner = ReassignLearner(
                montage(25, seed=1),
                fleet_for(16),
                ReassignParams(episodes=4, qtable_backend=backend),
                seed=7,
            )
            results[backend] = learner.learn()
        fast, plain = results["array"], results["dict"]
        assert fast.qtable_json == plain.qtable_json
        assert [e.to_dict() for e in fast.episodes] == [
            e.to_dict() for e in plain.episodes
        ]
        assert fast.plan.to_json() == plain.plan.to_json()
        assert fast.simulated_makespan == plain.simulated_makespan


def _cell_fingerprints(records):
    return [
        (r.key, r.value.simulated_makespan, r.value.learning_time,
         r.value.result.qtable_json, r.value.result.plan.to_json())
        for r in records
    ]


def _reduced_sweep_tasks():
    return sweep_tasks(
        montage(25, seed=1),
        fleet_for(16),
        alphas=(0.1, 0.9),
        gammas=(1.0,),
        epsilons=(0.1, 0.5),
        episodes=2,
        seed=1,
        timing="simulated",
    )


class TestKernelCachingRegression:
    def test_serial_sweep_builds_each_kernel_once(self):
        clear_kernel_cache()
        tasks = _reduced_sweep_tasks()
        assert all(t.kernel_fingerprint for t in tasks)
        try:
            ParallelRunner(workers=1).run(tasks)
            stats = kernel_cache_stats()
            assert stats["builds"] == 1
            assert stats["hits"] == len(tasks) - 1
        finally:
            clear_kernel_cache()

    def test_workers4_with_kernel_cache_bitwise_equal_serial(self):
        clear_kernel_cache()
        try:
            serial = ParallelRunner(workers=1).run(_reduced_sweep_tasks())
            pooled = ParallelRunner(workers=4).run(_reduced_sweep_tasks())
        finally:
            clear_kernel_cache()
        assert _cell_fingerprints(serial) == _cell_fingerprints(pooled)
