"""Tests for repro.rl.policy — including the paper's inverted ε convention."""

import pytest

from repro.rl import DecayingEpsilonPolicy, EpsilonGreedyPolicy, QTable, SoftmaxPolicy
from repro.util.rng import RngService
from repro.util.validate import ValidationError


@pytest.fixture
def table():
    t = QTable(init_scale=0.0)
    t.set("s", "best", 10.0)
    t.set("s", "worse", 1.0)
    t.set("s", "worst", 0.0)
    return t


@pytest.fixture
def rng():
    return RngService(3).stream("policy-test")


def exploit_fraction(policy, table, rng, n=3000):
    hits = sum(
        1 for _ in range(n)
        if policy.choose(table, "s", ["best", "worse", "worst"], rng) == "best"
    )
    return hits / n


class TestPaperEpsilonConvention:
    def test_epsilon_is_exploit_probability(self, table, rng):
        """ε = 0.9 must mean 'exploit 90% of the time' (paper §II/III-C)."""
        frac = exploit_fraction(EpsilonGreedyPolicy(0.9), table, rng)
        # exploit 90% + random hits best 1/3 of the remaining 10%
        assert frac == pytest.approx(0.9 + 0.1 / 3, abs=0.03)

    def test_low_epsilon_mostly_random(self, table, rng):
        frac = exploit_fraction(EpsilonGreedyPolicy(0.1), table, rng)
        assert frac == pytest.approx(0.1 + 0.9 / 3, abs=0.03)

    def test_epsilon_one_always_best(self, table, rng):
        assert exploit_fraction(EpsilonGreedyPolicy(1.0), table, rng, n=200) == 1.0

    def test_epsilon_zero_uniform(self, table, rng):
        frac = exploit_fraction(EpsilonGreedyPolicy(0.0), table, rng)
        assert frac == pytest.approx(1 / 3, abs=0.04)

    def test_textbook_convention_flag(self, table, rng):
        policy = EpsilonGreedyPolicy(0.1, epsilon_is_exploration=True)
        frac = exploit_fraction(policy, table, rng)
        assert frac == pytest.approx(0.9 + 0.1 / 3, abs=0.03)

    def test_empty_actions_rejected(self, table, rng):
        with pytest.raises(ValidationError):
            EpsilonGreedyPolicy(0.5).choose(table, "s", [], rng)

    def test_epsilon_validated(self):
        with pytest.raises(ValidationError):
            EpsilonGreedyPolicy(1.5)


class TestDecayingEpsilon:
    def test_anneals_towards_final(self):
        policy = DecayingEpsilonPolicy(epsilon=0.1, epsilon_final=0.95, decay=0.5)
        for _ in range(20):
            policy.episode_finished()
        assert policy.epsilon == pytest.approx(0.95, abs=1e-3)

    def test_monotonic_increase(self):
        policy = DecayingEpsilonPolicy(epsilon=0.1, epsilon_final=0.9, decay=0.9)
        values = []
        for _ in range(10):
            values.append(policy.epsilon)
            policy.episode_finished()
        assert values == sorted(values)


class TestSoftmax:
    def test_prefers_high_q(self, table, rng):
        policy = SoftmaxPolicy(temperature=1.0)
        frac = exploit_fraction(policy, table, rng)
        assert frac > 0.9  # Q gap of 9 at T=1 is near-deterministic

    def test_high_temperature_uniform(self, table, rng):
        policy = SoftmaxPolicy(temperature=1e6)
        frac = exploit_fraction(policy, table, rng)
        assert frac == pytest.approx(1 / 3, abs=0.04)

    def test_temperature_validated(self):
        with pytest.raises(ValidationError):
            SoftmaxPolicy(temperature=0.0)

    def test_empty_actions_rejected(self, table, rng):
        with pytest.raises(ValidationError):
            SoftmaxPolicy().choose(table, "s", [], rng)
