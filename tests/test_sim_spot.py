"""Tests for spot-instance revocations (repro.sim.spot + simulator)."""

import pytest

from repro.schedulers import GreedyOnlineScheduler, HeftScheduler, PlanFollowingScheduler
from repro.sim import (
    NoRevocations,
    PoissonRevocations,
    Revocation,
    WorkflowSimulator,
    ZeroCostNetwork,
    t2_fleet,
)
from repro.sim.simulator import SimulationError
from repro.sim.spot import RevocationModel
from repro.util.rng import RngService
from repro.util.validate import ValidationError


class FixedRevocations(RevocationModel):
    """Deterministic test double."""

    def __init__(self, revocations):
        self._revocations = list(revocations)

    def revocations(self, vms, horizon, rng):
        return [r for r in self._revocations if r.time < horizon]


@pytest.fixture
def rng():
    return RngService(4).stream("t")


class TestModels:
    def test_none(self, fleet16, rng):
        assert NoRevocations().revocations(fleet16, 1e4, rng) == []

    def test_poisson_respects_fraction(self, fleet16, rng):
        model = PoissonRevocations(mean_lifetime=1.0, spot_fraction=0.5)
        revs = model.revocations(fleet16, 1e6, rng)
        # 9 VMs, fraction 0.5 -> at most round(4.5)=4 spot VMs, all revoked
        # eventually at this tiny lifetime
        assert len(revs) == 4
        # the spot VMs are the high ids
        assert {r.vm_id for r in revs} == {5, 6, 7, 8}

    def test_poisson_protects_fleet(self, rng):
        fleet = t2_fleet(2, 0)
        model = PoissonRevocations(mean_lifetime=1.0, spot_fraction=1.0,
                                   protect_last=1)
        revs = model.revocations(fleet, 1e6, rng)
        assert {r.vm_id for r in revs} <= {1}  # VM 0 protected

    def test_sorted_by_time(self, fleet16, rng):
        revs = PoissonRevocations(mean_lifetime=100.0).revocations(
            fleet16, 1e5, rng
        )
        times = [r.time for r in revs]
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonRevocations(mean_lifetime=0)
        with pytest.raises(ValueError):
            PoissonRevocations(protect_last=0)
        with pytest.raises(ValidationError):
            Revocation(vm_id=0, time=-1.0)


class TestSimulatorIntegration:
    def test_revoked_vm_unused_after(self, montage25, fleet16):
        revs = FixedRevocations([Revocation(vm_id=8, time=30.0)])
        result = WorkflowSimulator(
            montage25, fleet16, GreedyOnlineScheduler(),
            network=ZeroCostNetwork(), revocations=revs,
        ).run()
        assert result.succeeded
        for r in result.records:
            if r.vm_id == 8:
                assert r.start_time < 30.0
                # interrupted work finished elsewhere, so anything
                # recorded on VM 8 completed before the revocation
                assert r.finish_time <= 30.0 + 1e-9

    def test_interrupted_work_reruns_elsewhere(self, montage25, fleet16):
        # VM 0 certainly has work at t=5 (greedy fills low ids first)
        revs = FixedRevocations([Revocation(vm_id=0, time=5.0)])
        clean = WorkflowSimulator(
            montage25, fleet16, GreedyOnlineScheduler(),
            network=ZeroCostNetwork(),
        ).run()
        interrupted_id = next(
            r.activation_id for r in clean.records
            if r.vm_id == 0 and r.start_time < 5.0 < r.finish_time
        )
        revoked = WorkflowSimulator(
            montage25, fleet16, GreedyOnlineScheduler(),
            network=ZeroCostNetwork(), revocations=revs,
        ).run()
        assert revoked.succeeded
        assert len(revoked.records) == len(montage25)
        # the interrupted activation completed on a surviving VM
        rerun = revoked.record(interrupted_id)
        assert rerun.vm_id != 0
        # and losing capacity never helps
        assert revoked.makespan >= clean.makespan - 1e-9

    def test_static_plan_deadlocks_on_revocation(self, montage25, fleet16):
        plan = HeftScheduler().plan(montage25, fleet16)
        # revoke a VM the plan certainly uses before anything finishes
        used_vm = plan.vm_of(montage25.exits()[0])
        revs = FixedRevocations([Revocation(vm_id=used_vm, time=1.0)])
        sim = WorkflowSimulator(
            montage25, fleet16, PlanFollowingScheduler(plan),
            network=ZeroCostNetwork(), revocations=revs,
        )
        with pytest.raises(SimulationError):
            sim.run()

    def test_revocation_of_idle_vm_is_quiet(self, chain, fleet16):
        revs = FixedRevocations([Revocation(vm_id=7, time=0.5)])

        class PinToZero(GreedyOnlineScheduler):
            def select(self, ctx):
                ready = ctx.ready_activations
                idle = [vm for vm in ctx.idle_vms if vm.id == 0]
                if not ready or not idle:
                    return None
                return (ready[0].id, 0)

        result = WorkflowSimulator(
            chain, fleet16, PinToZero(),
            network=ZeroCostNetwork(), revocations=revs,
        ).run()
        assert result.succeeded

    def test_unknown_vm_revocation_ignored(self, chain, fleet_small):
        revs = FixedRevocations([Revocation(vm_id=99, time=0.5)])
        result = WorkflowSimulator(
            chain, fleet_small, GreedyOnlineScheduler(),
            network=ZeroCostNetwork(), revocations=revs,
        ).run()
        assert result.succeeded
