"""Property-based tests: metric aggregates and the parallel runner.

Complements ``tests/test_sim_properties.py`` (which already covers
precedence, capacity and makespan lower bounds on random DAGs) with
invariants over the *measurements* a run produces — totals must be
non-negative and per-VM aggregates must add up — and with the runner's
core contracts: submission-order results, seed stability, and
serial == parallel on arbitrary batches.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runner import ParallelRunner, Task, task_seed
from repro.schedulers import GreedyOnlineScheduler, RandomScheduler
from repro.sim import WorkflowSimulator, ZeroCostNetwork

from tests.test_sim_properties import random_dag, random_fleet


def simulate(wf, fleet, seed):
    return WorkflowSimulator(
        wf, fleet, RandomScheduler(seed=seed),
        network=ZeroCostNetwork(), seed=seed,
    ).run()


class TestMetricsProperties:
    @settings(max_examples=40, deadline=None)
    @given(wf=random_dag(), fleet=random_fleet(),
           seed=st.integers(min_value=0, max_value=1000))
    def test_totals_non_negative(self, wf, fleet, seed):
        result = simulate(wf, fleet, seed)
        assert result.makespan >= 0.0
        assert result.mean_execution_time >= 0.0
        assert result.mean_queue_time >= 0.0
        assert result.usage_cost() >= 0.0
        assert result.cost() >= 0.0
        assert result.cost(per_second_billing=True) >= 0.0

    @settings(max_examples=40, deadline=None)
    @given(wf=random_dag(), fleet=random_fleet(),
           seed=st.integers(min_value=0, max_value=1000))
    def test_vm_usage_is_additive(self, wf, fleet, seed):
        """Per-VM aggregates must partition the per-activation records."""
        result = simulate(wf, fleet, seed)
        usage = result.vm_usage()
        assert sum(u.n_activations for u in usage) == len(result.records)
        assert sum(u.busy_time for u in usage) == pytest.approx(
            sum(r.execution_time for r in result.records)
        )
        for u in usage:
            assert u.busy_time >= 0.0
            assert u.first_start <= u.last_finish + 1e-9
            # a VM's busy window is contained in the run
            assert u.last_finish <= result.makespan + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(wf=random_dag(), fleet=random_fleet(),
           seed=st.integers(min_value=0, max_value=1000))
    def test_mean_execution_time_matches_records(self, wf, fleet, seed):
        result = simulate(wf, fleet, seed)
        expected = sum(r.execution_time for r in result.records) / len(
            result.records
        )
        assert result.mean_execution_time == pytest.approx(expected)

    @settings(max_examples=25, deadline=None)
    @given(wf=random_dag(), fleet=random_fleet(),
           seed=st.integers(min_value=0, max_value=1000))
    def test_greedy_scheduler_same_invariants(self, wf, fleet, seed):
        result = WorkflowSimulator(
            wf, fleet, GreedyOnlineScheduler(),
            network=ZeroCostNetwork(), seed=seed,
        ).run()
        usage = result.vm_usage()
        assert sum(u.n_activations for u in usage) == len(result.records)
        assert result.usage_cost() >= 0.0


def add_pair(payload, seed):
    """Module-level (picklable) task fn mixing payload and seed."""
    return (payload * 3 + 1, seed % 1000)


class TestRunnerProperties:
    @settings(max_examples=50, deadline=None)
    @given(payloads=st.lists(st.integers(-1000, 1000), max_size=30),
           root=st.integers(min_value=0, max_value=2**31))
    def test_serial_results_follow_submission_order(self, payloads, root):
        tasks = [
            Task(key=("p", i), fn=add_pair, payload=p)
            for i, p in enumerate(payloads)
        ]
        results = ParallelRunner(workers=1, run_id="prop", seed=root).run(tasks)
        assert [r.index for r in results] == list(range(len(payloads)))
        assert [r.key for r in results] == [t.key for t in tasks]
        assert all(r.ok for r in results)

    @settings(max_examples=50, deadline=None)
    @given(payloads=st.lists(st.integers(-1000, 1000), max_size=30),
           root=st.integers(min_value=0, max_value=2**31))
    def test_derived_seeds_stable_and_distinct(self, payloads, root):
        runner_a = ParallelRunner(workers=1, run_id="prop", seed=root)
        runner_b = ParallelRunner(workers=1, run_id="prop", seed=root)
        seeds = [runner_a.seed_for(("p", i)) for i in range(len(payloads))]
        assert seeds == [runner_b.seed_for(("p", i)) for i in range(len(payloads))]
        assert len(set(seeds)) == len(seeds)
        for i, s in enumerate(seeds):
            assert s == task_seed(root, "prop", ("p", i))
            assert 0 <= s < 2**63

    def test_parallel_equals_serial_on_random_batch(self):
        # One deliberately large mixed batch through a real pool; kept
        # outside @given so we spin up processes once, not per example.
        payloads = [((-1) ** i) * (i * 37 % 101) for i in range(40)]
        tasks = [
            Task(key=("p", i), fn=add_pair, payload=p)
            for i, p in enumerate(payloads)
        ]
        serial = ParallelRunner(workers=1, run_id="prop", seed=9).run(tasks)
        pooled = ParallelRunner(workers=4, run_id="prop", seed=9, chunk_size=3).run(tasks)
        assert [(r.key, r.value, r.seed) for r in serial] == [
            (r.key, r.value, r.seed) for r in pooled
        ]
