"""Determinism regression tests — parallel must equal serial, bitwise.

The runner's core guarantee: per-task seeds depend only on task
identity, never on worker count or completion order, so a sweep (or
ablation, or ensemble campaign) fans out over N processes and still
produces byte-identical records.  ``timing="simulated"`` replaces the
one irreducibly non-deterministic column (wall-clock learning time)
with the sum of episode makespans, making even the rendered Table II
reproducible.

The streaming scheduler service inherits the same contract: a service
run is a pure function of ``(schedule, fleet, policy, seed)``, and a
replica campaign is worker-count invariant through the same runner.

These runs are deliberately tiny (Montage-25, a 2x2x2 grid, a couple of
episodes) so the suite stays tier-1 fast.
"""

import pytest

from repro.experiments.ablations import run_rule_ablation
from repro.experiments.sweeps import run_paper_sweep
from repro.workflows.ensembles import run_ensemble_campaign
from repro.workflows.montage import montage

REDUCED_GRID = (0.1, 1.0)  # 8 cells instead of the paper's 81


def reduced_sweep(workers):
    return run_paper_sweep(
        workflow=montage(25, seed=1),
        vcpu_fleets=(16,),
        grid=REDUCED_GRID,
        episodes=3,
        seed=1,
        workers=workers,
        timing="simulated",
    )


def record_fingerprint(rec):
    """Everything a SweepRecord determines, including the learned plan."""
    return (
        rec.alpha,
        rec.gamma,
        rec.epsilon,
        rec.learning_time,
        rec.simulated_makespan,
        rec.result.plan.to_json(),
    )


class TestSweepDeterminism:
    def test_workers4_bitwise_equal_serial(self):
        serial = reduced_sweep(workers=1)
        pooled = reduced_sweep(workers=4)
        for vcpus in serial.records:
            fps_serial = [record_fingerprint(r) for r in serial.records[vcpus]]
            fps_pooled = [record_fingerprint(r) for r in pooled.records[vcpus]]
            assert fps_serial == fps_pooled

    def test_rendered_tables_identical(self):
        serial = reduced_sweep(workers=1)
        pooled = reduced_sweep(workers=4)
        assert serial.render_table2() == pooled.render_table2()
        assert serial.render_table3() == pooled.render_table3()

    def test_same_seed_serial_runs_identical(self):
        # The seed-plumbing guarantee: with every random stream routed
        # through repro.util.rng, two same-seed runs in the same process
        # cannot drift (no hidden global RNG, no hash randomization).
        first = reduced_sweep(workers=1)
        second = reduced_sweep(workers=1)
        for vcpus in first.records:
            assert [record_fingerprint(r) for r in first.records[vcpus]] == [
                record_fingerprint(r) for r in second.records[vcpus]
            ]

    def test_different_seeds_differ(self):
        # Sanity check that the comparisons above are not vacuous.
        a = run_paper_sweep(
            workflow=montage(25, seed=1), vcpu_fleets=(16,),
            grid=REDUCED_GRID, episodes=3, seed=1, timing="simulated",
        )
        b = run_paper_sweep(
            workflow=montage(25, seed=1), vcpu_fleets=(16,),
            grid=REDUCED_GRID, episodes=3, seed=2, timing="simulated",
        )
        fps_a = [record_fingerprint(r) for r in a.records[16]]
        fps_b = [record_fingerprint(r) for r in b.records[16]]
        assert fps_a != fps_b


class TestAblationDeterminism:
    def test_rule_ablation_workers_invariant(self):
        wf = montage(25, seed=3)
        kwargs = dict(workflow=wf, vcpus=16, episodes=2, seeds=(0, 1))
        serial = run_rule_ablation(workers=1, **kwargs)
        pooled = run_rule_ablation(workers=3, **kwargs)
        assert serial == pooled


class TestEnsembleDeterminism:
    def test_campaign_workers_invariant(self):
        kwargs = dict(n_activations=25, vcpus=16, episodes=2, seed=7)
        serial = run_ensemble_campaign(3, workers=1, **kwargs)
        pooled = run_ensemble_campaign(3, workers=2, **kwargs)
        assert serial == pooled  # frozen dataclasses compare field-wise

    def test_members_use_distinct_derived_seeds(self):
        members = run_ensemble_campaign(
            3, n_activations=25, vcpus=16, episodes=2, seed=7, workers=1
        )
        seeds = [m.seed for m in members]
        assert len(set(seeds)) == 3


@pytest.mark.service
class TestServiceDeterminism:
    """The streaming service's determinism contract (docs/service.md)."""

    @staticmethod
    def _scenario():
        from repro.service import (
            PoissonArrivals,
            ServiceConfig,
            default_tenants,
        )

        arrivals = PoissonArrivals(
            0.1, default_tenants(3, "cybershake", 5),
            seed=5, max_jobs=8,
        )
        return arrivals, ServiceConfig(policy="fair")

    def test_same_seed_runs_byte_identical(self):
        from repro.service import SchedulerService

        arrivals, config = self._scenario()
        first = SchedulerService(arrivals, config, seed=5).run()
        second = SchedulerService(arrivals, config, seed=5).run()
        assert first.to_json(include_jobs=True) == second.to_json(
            include_jobs=True
        )

    def test_different_seeds_differ(self):
        # arrival seed drives the schedule, so different roots give
        # different traffic — the byte-identity test is not vacuous
        from repro.service import (
            PoissonArrivals,
            SchedulerService,
            ServiceConfig,
            default_tenants,
        )

        def run_with(seed):
            arrivals = PoissonArrivals(
                0.1, default_tenants(3, "cybershake", 5),
                seed=seed, max_jobs=8,
            )
            return SchedulerService(
                arrivals, ServiceConfig(policy="fair"), seed=seed
            ).run()

        assert run_with(5).to_json(include_jobs=True) != run_with(
            6
        ).to_json(include_jobs=True)

    def test_replica_campaign_workers_invariant(self):
        from repro.service import run_service_replicas

        arrivals, config = self._scenario()
        serial = run_service_replicas(
            3, arrivals, config, seed=5, workers=1
        )
        pooled = run_service_replicas(
            3, arrivals, config, seed=5, workers=4
        )
        assert serial == pooled
        assert len(set(serial)) == 3  # replicas see distinct traffic

    def test_service_package_is_reprolint_clean(self):
        # the analyzer's determinism rules (global RNG, wall clock,
        # unordered iteration...) hold over the whole service package
        import pathlib

        from repro.analysis.engine import analyze_paths

        root = pathlib.Path(__file__).resolve().parents[1]
        service_dir = root / "src" / "repro" / "service"
        findings, n_files = analyze_paths([str(service_dir)])
        assert n_files >= 6
        assert findings == []
