"""Tests for repro.workflows.montage — the paper's workload."""

import pytest

from repro.dag import profile_dag
from repro.util.validate import ValidationError
from repro.workflows import MontageRecipe, montage
from repro.workflows.montage import RUNTIME_MEANS


class TestStructure:
    def test_exact_size(self):
        for n in (11, 25, 50, 100):
            assert len(montage(n)) == n

    def test_paper_workload_is_default(self):
        assert len(montage()) == 50

    def test_nine_levels(self):
        # mProjectPP .. mJPEG
        assert len(montage(50).levels()) == 9

    def test_activity_composition(self):
        wf = montage(50)
        activities = {}
        for ac in wf:
            activities[ac.activity] = activities.get(ac.activity, 0) + 1
        # singletons
        for single in ("mConcatFit", "mBgModel", "mImgtbl", "mAdd",
                       "mShrink", "mJPEG"):
            assert activities[single] == 1
        # symmetric wide stages
        assert activities["mProjectPP"] == activities["mBackground"]
        assert activities["mDiffFit"] >= 1
        assert set(activities) == set(RUNTIME_MEANS)

    def test_level_order_matches_montage(self):
        wf = montage(50)
        levels = wf.levels()
        level_activities = [
            {wf.activation(i).activity for i in lvl} for lvl in levels
        ]
        assert level_activities[0] == {"mProjectPP"}
        assert level_activities[1] == {"mDiffFit"}
        assert level_activities[2] == {"mConcatFit"}
        assert level_activities[3] == {"mBgModel"}
        assert level_activities[4] == {"mBackground"}
        assert level_activities[-1] == {"mJPEG"}

    def test_ids_are_level_ordered(self):
        # entry tasks (mProjectPP) take the lowest ids, like published DAXes
        wf = montage(50)
        assert all(
            wf.activation(i).activity == "mProjectPP" for i in wf.entries()
        )
        assert wf.entries() == list(range(len(wf.entries())))

    def test_mdifffit_consumes_two_projections(self):
        wf = montage(50)
        for ac in wf:
            if ac.activity == "mDiffFit":
                assert len(ac.inputs) == 2
                assert all(f.name.startswith("proj_") for f in ac.inputs)

    def test_valid_dag(self):
        montage(50).validate()


class TestDeterminism:
    def test_same_seed_identical(self):
        a, b = montage(50, seed=9), montage(50, seed=9)
        assert [ac.runtime for ac in a.activations] == [
            ac.runtime for ac in b.activations
        ]
        assert a.edges == b.edges

    def test_different_seed_differs(self):
        a, b = montage(50, seed=1), montage(50, seed=2)
        assert [ac.runtime for ac in a.activations] != [
            ac.runtime for ac in b.activations
        ]

    def test_structure_invariant_across_seeds(self):
        assert montage(50, seed=1).edges == montage(50, seed=2).edges


class TestSizing:
    def test_too_small_rejected(self):
        with pytest.raises(ValidationError):
            montage(MontageRecipe.min_activations() - 1)

    def test_min_size_works(self):
        assert len(montage(MontageRecipe.min_activations())) == 11

    @pytest.mark.parametrize("n", range(11, 60))
    def test_constructible_sizes_build_exactly(self, n):
        if MontageRecipe.is_constructible(n):
            wf = montage(n)
            assert len(wf) == n
            wf.validate()
        else:
            with pytest.raises(ValidationError):
                montage(n)

    def test_nearest_constructible(self):
        # 12 is a known arithmetic gap (2w + d + 6 has no solution)
        assert not MontageRecipe.is_constructible(12)
        near = MontageRecipe.nearest_constructible(12)
        assert abs(near - 12) <= 2
        assert MontageRecipe.is_constructible(near)

    def test_standard_sizes_constructible(self):
        # the Workflow Generator's published sizes must all exist
        for n in (25, 50, 100):
            assert MontageRecipe.is_constructible(n)

    def test_runtime_scale_plausible(self):
        # the paper's simulated makespans are a few hundred seconds; the
        # serial runtime of Montage-50 must be in the right ballpark
        p = profile_dag(montage(50, seed=1))
        assert 400 < p.serial_runtime < 1200
        assert 150 < p.critical_path_runtime < 350
