"""Tests for the ASCII plotting and DOT export utilities."""

import pytest

from repro.dag import to_dot
from repro.util import ascii_plot, sparkline
from repro.util.validate import ValidationError
from repro.workflows import montage


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s[0] == "▁" and s[-1] == "█"
        assert len(s) == 8

    def test_extremes_mapped(self):
        s = sparkline([10.0, 0.0, 10.0])
        assert s == "█▁█"


class TestAsciiPlot:
    def test_basic_shape(self):
        text = ascii_plot([1, 5, 3, 8, 2], width=20, height=5, title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 1 + 5 + 1  # title + rows + axis
        assert "8.0" in lines[1]  # max label on top row
        assert "1.0" in lines[5]  # min label on bottom row

    def test_downsampling(self):
        series = list(range(1000))
        text = ascii_plot(series, width=50, height=6)
        body = [l for l in text.splitlines() if "|" in l]
        assert all(len(l.split("|")[1]) <= 50 for l in body)

    def test_every_point_plotted(self):
        text = ascii_plot([1, 2, 3], width=30, height=4)
        assert text.count("*") == 3

    def test_y_label(self):
        text = ascii_plot([1, 2], y_label="episode")
        assert text.splitlines()[-1].strip() == "episode"

    def test_validation(self):
        with pytest.raises(ValidationError):
            ascii_plot([])
        with pytest.raises(ValidationError):
            ascii_plot([1, 2], width=5)

    def test_learning_curve_integration(self, montage25, fleet16):
        from repro.core import ReassignLearner, ReassignParams

        result = ReassignLearner(
            montage25, fleet16,
            ReassignParams(episodes=5), seed=1,
        ).learn()
        text = ascii_plot(result.makespan_curve(), title="learning curve")
        assert "learning curve" in text


class TestDotExport:
    def test_structure(self, diamond):
        dot = to_dot(diamond)
        assert dot.startswith('digraph "diamond"')
        assert dot.rstrip().endswith("}")
        for i in range(4):
            assert f"n{i} [" in dot
        assert "n0 -> n1;" in dot and "n2 -> n3;" in dot

    def test_activity_colours_consistent(self):
        wf = montage(25, seed=1)
        dot = to_dot(wf)
        # all mProjectPP nodes share one fill colour
        colours = {
            line.split('fillcolor="')[1].split('"')[0]
            for line in dot.splitlines()
            if "mProjectPP" in line
        }
        assert len(colours) == 1

    def test_runtime_toggle(self, diamond):
        with_rt = to_dot(diamond)
        without = to_dot(diamond, include_runtimes=False)
        assert "(10.0s)" in with_rt
        assert "(10.0s)" not in without

    def test_file_output(self, diamond, tmp_path):
        path = tmp_path / "wf.dot"
        to_dot(diamond, path)
        assert path.read_text().startswith("digraph")

    def test_quote_escaping(self):
        from repro.dag import Workflow
        from tests.conftest import make_activation

        wf = Workflow('we"ird')
        wf.add_activation(make_activation(0))
        assert r"\"" in to_dot(wf)
