"""Smoke tests: every example script must run end-to-end.

Examples are executed in a subprocess (they are user-facing entry
points, so they must work as scripts, not just as importable modules)
with tiny episode counts.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=120):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "3")
        assert "HEFT makespan" in out
        assert "ReASSIgN learned over 3 episodes" in out
        assert "Gantt" in out

    def test_montage_on_aws(self):
        out = run_example("montage_on_aws.py", "3")
        assert "HEFT" in out and "provenance-warm" in out
        assert "Provenance database contents" in out
        assert "execution #3" in out  # three runs recorded

    def test_parameter_study(self):
        out = run_example("parameter_study.py", "2", "0.1,1.0")
        assert "Table II" in out and "Table III" in out
        assert "Best cell" in out

    def test_fault_tolerant_cloud(self):
        out = run_example("fault_tolerant_cloud.py")
        assert "finished with failure" in out  # scenario 4's terminal
        assert "needed retries" in out

    def test_scheduler_shootout(self):
        out = run_example("scheduler_shootout.py", "2")
        for name in ("HEFT", "Min-Min", "OLB", "ReASSIgN", "Random"):
            assert name in out
        for workflow in ("montage", "cybershake", "sipht"):
            assert workflow in out

    def test_cost_aware_and_online(self):
        out = run_example("cost_aware_and_online.py", "3")
        assert "cost weight" in out
        assert "plan-based replay" in out
        assert "online, learning on the cloud" in out


class TestCliAsSubprocess:
    """The `python -m repro` entry point must work from a fresh process."""

    def test_module_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "table", "1"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0
        assert "Table I" in proc.stdout

    def test_help(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0
        for cmd in ("workflow", "simulate", "learn", "pipeline", "table"):
            assert cmd in proc.stdout


class TestEnsembleExample:
    def test_ensemble_campaign(self):
        out = run_example("ensemble_campaign.py", "3")
        assert "montage-ensemble-4x25" in out
        assert "Scheduler comparison" in out
        assert "per-VM performance history" in out


class TestClusteringHostsExample:
    def test_clustering_and_hosts(self):
        out = run_example("clustering_and_hosts.py")
        assert "clustering under a 2s dispatch overhead" in out
        assert "vertical" in out and "horizontal(3)" in out
        assert "failing host" in out
        assert "completed on surviving VMs" in out
