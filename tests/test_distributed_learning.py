"""Distributed actor/learner engine: bit-identical to serial learning.

``repro.core.distributed.learn_distributed`` runs speculative rollout
actors against versioned Q-table snapshots and replays their decision
traces through one ordered learner — pure performance work, so the
PR-level contract is byte-equality against ``ReassignLearner.learn()``
at **any** actor count:

- directed tests sweep actor counts over N ∈ {1, 2, 4, 7} in inline
  mode, the full (N, B) ∈ {1, 2, 4} × {1, 2, 8} actor × wave-chunk
  grid, and N ∈ {2, 3} through the real process pool (batched and
  not);
- the generic (non-fused) replay path is covered for SARSA, Double-Q,
  bucketed states and the dict backend, and the fused path for the
  array and shard backends;
- failures + retries, ``validate_exact`` auditing and the stats
  side-channel each get a test;
- a Hypothesis property learns random layered DAGs distributed and
  serial and demands identical ``LearningResult.to_json()``;
- the versioned-snapshot primitives the engine rides on
  (``QTable.snapshot``/``restore``/``version``/pickling) are pinned
  directly, including init-stream fidelity across a restore, and the
  delta-snapshot transport (``snapshot(since=...)`` + patch-in-place
  restore) gets golden round-trip vectors — including the shard
  backend with memmap spill — plus a Hypothesis property demanding
  ``restore(full)`` ≡ ``restore(base) + patch(delta)``.

Everything runs ``timing="simulated"`` so the learning time is the
deterministic simulated clock and ``to_json()`` equality is exact.
"""

import json
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distributed import host_cores, learn_distributed
from repro.core.reassign import (
    ReassignLearner,
    ReassignParams,
    SimulatedLearningClock,
)
from repro.experiments.environments import fleet_for
from repro.rl import QTable
from repro.sim.failures import BernoulliFailures
from repro.util.validate import ValidationError
from repro.workflows.montage import montage

from tests.test_batched_engine import random_dag


def _serial(wf, fleet, params, seed=0, **kw):
    """The reference: the serial learner on the simulated clock."""
    return ReassignLearner(
        wf, fleet, params, seed=seed, clock=SimulatedLearningClock(), **kw
    ).learn()


def _distributed(wf, fleet, params, seed=0, learner_kw=None, **kw):
    kw.setdefault("timing", "simulated")
    return learn_distributed(
        wf, fleet, params, seed=seed, **(learner_kw or {}), **kw
    )


def _params(**kw):
    kw.setdefault("alpha", 0.5)
    kw.setdefault("gamma", 1.0)
    kw.setdefault("epsilon", 0.1)
    kw.setdefault("episodes", 8)
    return ReassignParams(**kw)


class TestDistributedVsSerial:
    @pytest.mark.parametrize("n_actors", [1, 2, 4, 7])
    def test_actor_counts_bitwise_identical(self, n_actors):
        wf = montage(20, seed=1)
        fleet = fleet_for(16)
        params = _params(episodes=10)
        expected = _serial(wf, fleet, params, seed=7).to_json()
        stats = {}
        got = _distributed(
            wf, fleet, params, seed=7, n_actors=n_actors, mode="inline",
            stats_out=stats,
        )
        assert got.to_json() == expected
        assert stats["n_actors"] == n_actors
        assert stats["episodes"] == 10

    @pytest.mark.parametrize("batch", [1, 2, 8])
    @pytest.mark.parametrize("n_actors", [1, 2, 4])
    def test_actor_batch_grid_bitwise_identical(self, n_actors, batch):
        """The full (N, B) wave-geometry grid, inline engine."""
        wf = montage(20, seed=1)
        fleet = fleet_for(16)
        params = _params(episodes=10)
        expected = _serial(wf, fleet, params, seed=7).to_json()
        stats = {}
        got = _distributed(
            wf, fleet, params, seed=7, n_actors=n_actors, batch=batch,
            mode="inline", stats_out=stats,
        )
        assert got.to_json() == expected
        assert stats["batch"] == batch

    @pytest.mark.parametrize("batch", [1, 2, 8])
    @pytest.mark.parametrize("n_actors", [1, 2, 4])
    def test_actor_batch_grid_validate_exact(self, n_actors, batch):
        """Same grid through the audited speculation machinery."""
        wf = montage(15, seed=1)
        fleet = fleet_for(16)
        params = _params(episodes=9)
        expected = _serial(wf, fleet, params, seed=4).to_json()
        got = _distributed(
            wf, fleet, params, seed=4, n_actors=n_actors, batch=batch,
            mode="inline", validate_exact=True,
        )
        assert got.to_json() == expected

    @pytest.mark.parametrize("n_actors", [2, 3])
    def test_pool_mode_bitwise_identical(self, n_actors):
        wf = montage(15, seed=1)
        fleet = fleet_for(16)
        params = _params(episodes=6)
        expected = _serial(wf, fleet, params, seed=3).to_json()
        stats = {}
        got = _distributed(
            wf, fleet, params, seed=3, n_actors=n_actors, mode="pool",
            stats_out=stats,
        )
        assert got.to_json() == expected
        assert stats["mode"] == "pool"

    @pytest.mark.parametrize("batch", [2, 8])
    def test_pool_mode_batched_bitwise_identical(self, batch):
        """Chunked waves through the real process pool (delta bases)."""
        wf = montage(15, seed=1)
        fleet = fleet_for(16)
        params = _params(episodes=6)
        expected = _serial(wf, fleet, params, seed=3).to_json()
        got = _distributed(
            wf, fleet, params, seed=3, n_actors=2, batch=batch,
            mode="pool",
        )
        assert got.to_json() == expected

    @pytest.mark.parametrize(
        "extra",
        [
            {"rule": "sarsa"},
            {"rule": "doubleq"},
            {"state_buckets": 3},
            {"qtable_backend": "dict"},
        ],
        ids=["sarsa", "doubleq", "buckets", "dict-backend"],
    )
    def test_generic_replay_paths_bitwise_identical(self, extra):
        wf = montage(15, seed=2)
        fleet = fleet_for(16)
        params = _params(episodes=6, **extra)
        expected = _serial(wf, fleet, params, seed=5).to_json()
        got = _distributed(
            wf, fleet, params, seed=5, n_actors=2, mode="inline"
        )
        assert got.to_json() == expected

    @pytest.mark.parametrize("batch", [1, 4])
    @pytest.mark.parametrize("mode", ["inline", "pool"])
    def test_shard_backend_bitwise_identical(self, mode, batch):
        wf = montage(15, seed=2)
        fleet = fleet_for(16)
        params = _params(episodes=5, qtable_backend="shard")
        expected = _serial(wf, fleet, params, seed=5).to_json()
        got = _distributed(
            wf, fleet, params, seed=5, n_actors=2, batch=batch, mode=mode
        )
        assert got.to_json() == expected

    @pytest.mark.parametrize("batch", [1, 3])
    def test_failures_and_retries_bitwise_identical(self, batch):
        wf = montage(15, seed=3)
        fleet = fleet_for(16)
        params = _params(episodes=6)
        failures = BernoulliFailures(0.05)
        expected = _serial(
            wf, fleet, params, seed=11, failures=failures, max_attempts=2
        ).to_json()
        got = _distributed(
            wf, fleet, params, seed=11, n_actors=3, batch=batch,
            mode="inline", failures=failures, max_attempts=2,
        )
        assert got.to_json() == expected

    def test_validate_exact_audits_and_matches(self):
        wf = montage(15, seed=1)
        fleet = fleet_for(16)
        params = _params(episodes=6)
        expected = _serial(wf, fleet, params, seed=3).to_json()
        stats = {}
        got = _distributed(
            wf, fleet, params, seed=3, n_actors=2, mode="inline",
            validate_exact=True, stats_out=stats,
        )
        assert got.to_json() == expected
        # with auditing on, even exact-base episodes go through replay,
        # so nothing is adopted wholesale
        assert stats["exact_commits"] + stats["resims"] == stats["episodes"]

    def test_validate_exact_exercises_inline_speculation(self):
        """validate_exact keeps the AIMD width alive inline.

        Plain inline mode pins the wave width to 1 (speculation can
        never pay without overlap), so this audit mode is what
        exercises the speculative dispatch + throttle machinery
        in-process: the width starts at n_actors and the controller
        adapts it, while results stay bit-identical.
        """
        wf = montage(20, seed=1)
        fleet = fleet_for(16)
        params = _params(episodes=12)
        expected = _serial(wf, fleet, params, seed=9).to_json()
        stats = {}
        got = _distributed(
            wf, fleet, params, seed=9, n_actors=4, mode="inline",
            validate_exact=True, stats_out=stats,
        )
        assert got.to_json() == expected
        # speculation actually happened: beyond-head episodes were
        # dispatched, so the hit-rate is a measured number, not None
        assert stats["speculative_hits"] + stats["speculative_misses"] > 0
        assert stats["speculative_hit_rate"] is not None
        assert 1 <= stats["final_width"] <= 4

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        batch=st.sampled_from([1, 2, 5]),
    )
    def test_random_dags_bitwise_identical(self, seed, batch):
        wf = random_dag(seed, n_min=4, n_max=8)
        fleet = fleet_for(16)
        params = _params(episodes=3, alpha=0.5, epsilon=0.3)
        expected = _serial(wf, fleet, params, seed=seed).to_json()
        got = _distributed(
            wf, fleet, params, seed=seed, n_actors=3, batch=batch,
            mode="inline",
        )
        assert got.to_json() == expected


class TestStatsAndValidation:
    def test_stats_out_schema(self):
        wf = montage(15, seed=1)
        stats = {}
        _distributed(
            wf, fleet_for(16), _params(episodes=5), seed=1, n_actors=2,
            mode="inline", stats_out=stats,
        )
        for key in (
            "n_actors", "mode", "episodes", "waves", "exact_commits",
            "speculative_hits", "speculative_misses", "resims",
            "speculative_hit_rate", "final_width", "host_cores",
        ):
            assert key in stats, key
        assert stats["mode"] == "inline"
        assert stats["waves"] >= 1
        assert (
            stats["exact_commits"]
            + stats["speculative_hits"]
            + stats["resims"]
            == stats["episodes"]
        )
        assert stats["resims"] == stats["speculative_misses"]
        rate = stats["speculative_hit_rate"]
        assert rate is None or 0.0 <= rate <= 1.0
        assert stats["host_cores"] == host_cores()

    def test_auto_mode_resolves(self):
        wf = montage(15, seed=1)
        stats = {}
        _distributed(
            wf, fleet_for(16), _params(episodes=2), seed=1, n_actors=2,
            mode="auto", stats_out=stats,
        )
        assert stats["mode"] in ("inline", "pool")
        if host_cores() == 1:
            assert stats["mode"] == "inline"

    def test_rejects_bad_arguments(self):
        wf = montage(15, seed=1)
        fleet = fleet_for(16)
        params = _params(episodes=1)
        with pytest.raises(ValidationError):
            learn_distributed(wf, fleet, params, n_actors=0)
        with pytest.raises(ValidationError):
            learn_distributed(wf, fleet, params, n_actors=2, mode="bogus")
        with pytest.raises(ValidationError):
            learn_distributed(wf, fleet, params, n_actors=2, timing="bogus")

    def test_wall_timing_runs(self):
        wf = montage(15, seed=1)
        result = learn_distributed(
            wf, fleet_for(16), _params(episodes=2), seed=1, n_actors=2,
            mode="inline", timing="wall",
        )
        assert result.n_episodes == 2
        assert result.learning_time >= 0.0


class TestQTableSnapshots:
    @pytest.mark.parametrize("backend", ["array", "shard", "dict"])
    def test_snapshot_restore_roundtrip(self, backend):
        table = QTable(seed=3, backend=backend)
        table.set("s0", (0, 1), 1.5)
        table.set("s1", (2, 0), -0.5)
        snap = table.snapshot()
        before = table.to_json()
        table.set("s0", (0, 1), 99.0)
        table.set("s2", (1, 1), 7.0)
        table.bump_version()
        assert table.to_json() != before
        table.restore(snap)
        assert table.to_json() == before
        assert table.version == snap.version

    def test_version_counter_is_explicit(self):
        table = QTable(seed=0)
        assert table.version == 0
        table.set("s", (0, 0), 1.0)
        assert table.version == 0  # writes do not bump
        assert table.bump_version() == 1
        assert table.version == 1

    def test_restore_reenters_version_era(self):
        table = QTable(seed=0)
        table.bump_version()
        snap = table.snapshot()
        table.bump_version()
        table.bump_version()
        assert table.version == 3
        table.restore(snap)
        assert table.version == 1

    def test_restore_rejects_backend_mismatch(self):
        array = QTable(seed=0, backend="array")
        other = QTable(seed=0, backend="dict")
        with pytest.raises(ValidationError):
            array.restore(other.snapshot())

    def test_snapshot_preserves_init_stream(self):
        """Restored tables draw identical first-touch init values."""
        table = QTable(seed=9, init_scale=1e-3)
        table.value("s0", (0, 0))  # consume some of the init stream
        snap = table.snapshot()
        expected = [table.value(f"s{i}", (i, 0)) for i in range(1, 5)]
        table.restore(snap)
        got = [table.value(f"s{i}", (i, 0)) for i in range(1, 5)]
        assert got == expected

    @pytest.mark.parametrize("backend", ["array", "shard"])
    def test_pickle_roundtrip_drops_id_memo(self, backend):
        table = QTable(seed=1, backend=backend)
        table.set("s0", (0, 1), 2.0)
        table.bump_version()
        clone = pickle.loads(pickle.dumps(table))
        assert clone.to_json() == table.to_json()
        assert clone.version == table.version
        assert clone._id_memo == {}
        # the clone's init stream continues where the original's would
        assert clone.value("sX", (5, 5)) == table.value("sX", (5, 5))


class TestDeltaSnapshots:
    """``snapshot(since=K)`` + patch-in-place ``restore``.

    The transport the pool-mode engine ships wave bases and post-chunk
    states over: only rows whose write-era is >= K travel, and a patch
    only applies to a table sitting exactly at version K.
    """

    @staticmethod
    def _seeded(backend, **kw):
        """A table with two version eras of hand-pinned writes."""
        table = QTable(seed=13, init_scale=0.0, backend=backend, **kw)
        table.set("s0", (0, 1), 1.25)
        table.set("s1", (1, 0), -2.5)
        table.set("s2", (0, 0), 0.75)
        table.bump_version()
        return table

    @staticmethod
    def _advance(table):
        """Era-2 writes: one row updated, one row brand new."""
        table.set("s1", (1, 0), 4.5)
        table.set("s3", (2, 1), 9.0)
        table.bump_version()

    @pytest.mark.parametrize("backend", ["array", "shard"])
    def test_golden_roundtrip_vectors(self, backend):
        table = self._seeded(backend)
        base = table.snapshot()
        self._advance(table)
        full = table.snapshot()
        delta = table.snapshot(since=base.version)
        assert delta.base_version == base.version == 1
        assert full.base_version is None

        via_full = QTable(seed=13, init_scale=0.0, backend=backend)
        via_full.restore(full)
        via_patch = QTable(seed=13, init_scale=0.0, backend=backend)
        via_patch.restore(base)
        via_patch.restore(delta)
        assert via_patch.to_json() == via_full.to_json() == table.to_json()
        assert via_patch.version == table.version == 2
        # the hand-pinned vectors survive the patch byte for byte
        assert via_patch.value("s0", (0, 1)) == 1.25
        assert via_patch.value("s1", (1, 0)) == 4.5
        assert via_patch.value("s2", (0, 0)) == 0.75
        assert via_patch.value("s3", (2, 1)) == 9.0

    def test_golden_roundtrip_shard_memmap_spill(self, tmp_path):
        """Same vectors with 2-row shards spilled to numpy.memmap."""
        table = self._seeded(
            "shard", shard_rows=2, shard_dir=tmp_path / "shards"
        )
        base = table.snapshot()
        self._advance(table)
        expected = table.to_json()
        delta = table.snapshot(since=base.version)

        clone = QTable(
            seed=13, init_scale=0.0, backend="shard", shard_rows=2,
            shard_dir=tmp_path / "clone-shards",
        )
        clone.restore(base)
        clone.restore(delta)
        assert clone.to_json() == expected
        assert clone.value("s1", (1, 0)) == 4.5
        assert clone.value("s3", (2, 1)) == 9.0
        # the source table's spill actually happened (a full restore
        # rehydrates the clone's store in memory — snapshot payloads
        # are plain arrays — so only the source side stays mapped)
        assert table._store.memmapped

    def test_delta_ships_only_touched_rows(self):
        table = self._seeded("array")
        self._advance(table)
        delta = table.snapshot(since=1)
        rows = delta.payload[0]
        # era-2 touched s1 (id 1) and s3 (id 3); s0/s2 stay home
        assert list(rows) == [1, 3]

    def test_patch_refuses_wrong_base(self):
        table = self._seeded("array")
        self._advance(table)
        delta = table.snapshot(since=2)
        fresh = QTable(seed=13, init_scale=0.0, backend="array")
        with pytest.raises(ValidationError):
            fresh.restore(delta)  # fresh is at version 0, not 2

    def test_since_validates_range(self):
        table = self._seeded("array")
        with pytest.raises(ValidationError):
            table.snapshot(since=-1)
        with pytest.raises(ValidationError):
            table.snapshot(since=table.version + 1)

    def test_dict_backend_falls_back_to_full(self):
        table = QTable(seed=2, backend="dict")
        table.set("s", (0, 0), 3.0)
        table.bump_version()
        snap = table.snapshot(since=1)
        assert snap.base_version is None  # a full snapshot
        fresh = QTable(seed=2, backend="dict")
        fresh.restore(snap)
        assert fresh.to_json() == table.to_json()

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.data(),
        backend=st.sampled_from(["array", "shard"]),
    )
    def test_restore_full_equals_base_plus_patch(self, data, backend):
        """restore(full) ≡ restore(base) + patch(delta), any history."""
        write = st.tuples(
            st.integers(min_value=0, max_value=5),   # state index
            st.integers(min_value=0, max_value=3),   # action index
            st.floats(
                min_value=-10, max_value=10,
                allow_nan=False, allow_subnormal=False,
            ),
        )
        era1 = data.draw(st.lists(write, max_size=8), label="era1")
        era2 = data.draw(st.lists(write, max_size=8), label="era2")
        actions = [(a, a + 1) for a in range(4)]

        table = QTable(seed=5, init_scale=1e-3, backend=backend)
        for s, a, v in era1:
            table.set(f"s{s}", actions[a], v)
        table.bump_version()
        base = table.snapshot()
        for s, a, v in era2:
            table.set(f"s{s}", actions[a], v)
        table.bump_version()
        full = table.snapshot()
        delta = table.snapshot(since=base.version)

        via_full = QTable(seed=5, init_scale=1e-3, backend=backend)
        via_full.restore(full)
        via_patch = QTable(seed=5, init_scale=1e-3, backend=backend)
        via_patch.restore(base)
        via_patch.restore(delta)
        assert via_patch.to_json() == via_full.to_json()
        assert via_patch.version == via_full.version
        # the init stream continues identically after either route
        assert via_patch.value("sX", (9, 9)) == via_full.value("sX", (9, 9))


def test_stats_are_json_serializable():
    wf = montage(15, seed=1)
    stats = {}
    _distributed(
        wf, fleet_for(16), _params(episodes=3), seed=2, n_actors=2,
        mode="inline", stats_out=stats,
    )
    json.dumps(stats)  # must not raise
