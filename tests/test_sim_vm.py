"""Tests for repro.sim.vm — VM types, VM state and fleets."""

import pytest

from repro.sim.vm import VM_TYPES, Vm, VmType, fleet_vcpus, t2_fleet
from repro.util.validate import ValidationError


class TestVmType:
    def test_catalog_has_paper_types(self):
        assert "t2.micro" in VM_TYPES and "t2.2xlarge" in VM_TYPES
        micro, big = VM_TYPES["t2.micro"], VM_TYPES["t2.2xlarge"]
        # Table I's specs: 1 vCPU / 1 GB vs 8 vCPUs / (>=16) GB
        assert micro.vcpus == 1 and micro.ram_gb == 1.0
        assert big.vcpus == 8

    def test_same_nominal_core_speed(self):
        # the whole t2 family shares the physical core type
        speeds = {t.speed for t in VM_TYPES.values()}
        assert speeds == {1.0}

    def test_bandwidth_conversion(self):
        t = VmType("x", 1, 1.0, 1.0, 0.0, bandwidth_mbps=800.0)
        assert t.bandwidth_bytes_per_s == pytest.approx(1e8)

    def test_pricing_order(self):
        assert (VM_TYPES["t2.micro"].price_per_hour
                < VM_TYPES["t2.2xlarge"].price_per_hour)

    def test_validation(self):
        with pytest.raises(ValidationError):
            VmType("", 1, 1.0, 1.0, 0.0)
        with pytest.raises(ValidationError):
            VmType("x", 0, 1.0, 1.0, 0.0)
        with pytest.raises(ValidationError):
            VmType("x", 1, -1.0, 1.0, 0.0)


class TestVm:
    def test_capacity_tracking(self):
        vm = Vm(0, VM_TYPES["t2.2xlarge"])
        assert vm.capacity == 8 and vm.free_slots == 8
        vm.start(1)
        vm.start(2)
        assert vm.free_slots == 6
        vm.finish(1)
        assert vm.free_slots == 7

    def test_paper_state_values(self):
        vm = Vm(0, VM_TYPES["t2.micro"])
        assert vm.state == "idle"
        vm.start(1)
        assert vm.state == "busy"

    def test_multicore_idle_until_full(self):
        vm = Vm(0, VM_TYPES["t2.2xlarge"])
        for i in range(8):
            assert vm.is_idle(0.0)
            vm.start(i)
        assert not vm.is_idle(0.0)

    def test_over_capacity_rejected(self):
        vm = Vm(0, VM_TYPES["t2.micro"])
        vm.start(1)
        with pytest.raises(ValidationError):
            vm.start(2)

    def test_double_start_rejected(self):
        vm = Vm(0, VM_TYPES["t2.2xlarge"])
        vm.start(1)
        with pytest.raises(ValidationError):
            vm.start(1)

    def test_finish_unknown_rejected(self):
        with pytest.raises(ValidationError):
            Vm(0, VM_TYPES["t2.micro"]).finish(9)

    def test_not_idle_before_boot(self):
        vm = Vm(0, VM_TYPES["t2.micro"])
        vm.available_at = 30.0
        assert not vm.is_idle(10.0)
        assert vm.is_idle(30.0)

    def test_not_idle_while_migrating(self):
        vm = Vm(0, VM_TYPES["t2.micro"])
        vm.migrating = True
        assert not vm.is_idle(0.0)

    def test_execution_time_scales_with_speed(self):
        fast = Vm(0, VmType("fast", 1, 2.0, 1.0, 0.0))
        assert fast.execution_time(10.0) == pytest.approx(5.0)

    def test_reset(self):
        vm = Vm(0, VM_TYPES["t2.micro"])
        vm.start(1)
        vm.migrating = True
        vm.available_at = 99.0
        vm.reset()
        assert vm.free_slots == 1 and not vm.migrating and vm.available_at == 0.0

    def test_negative_id_rejected(self):
        with pytest.raises(ValidationError):
            Vm(-1, VM_TYPES["t2.micro"])


class TestFleet:
    def test_table1_shapes(self):
        # the paper's three fleets
        assert fleet_vcpus(t2_fleet(8, 1)) == 16
        assert fleet_vcpus(t2_fleet(8, 3)) == 32
        assert fleet_vcpus(t2_fleet(8, 7)) == 64

    def test_micros_get_low_ids(self):
        fleet = t2_fleet(8, 1)
        assert [vm.type.name for vm in fleet[:8]] == ["t2.micro"] * 8
        assert fleet[8].type.name == "t2.2xlarge"  # VM 8, as in Table V

    def test_ids_sequential(self):
        fleet = t2_fleet(2, 2)
        assert [vm.id for vm in fleet] == [0, 1, 2, 3]

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValidationError):
            t2_fleet(0, 0)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            t2_fleet(-1, 1)
