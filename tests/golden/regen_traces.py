"""Builders and regeneration entry point for the golden trace fixtures.

``tests/golden/`` freezes more than plans: the files written here pin the
*per-activation traces* and *per-episode learning records* of reference
runs, so an engine refactor can be proven bit-identical, not just
plan-identical.  ``tests/test_kernel_equivalence.py`` imports the builders
in this module and compares their output against the frozen JSON.

The fixtures cover four behaviourally distinct regimes:

- ``montage50_heft_trace.json`` — a plan-following replay of the golden
  HEFT plan under the learning-environment fluctuation model (the
  deterministic burst-throttle), exercising the static-plan path.
- ``montage50_reassign_episodes.json`` — the golden ReASSIgN learner's
  full per-episode history (makespans, rewards, assignments), exercising
  the Q-learning hot path across episodes.
- ``montage25_noisy_trace.json`` — two online-scheduler runs through the
  stochastic models: one with Gaussian fluctuation + Bernoulli failures +
  periodic migrations (retry and migration event paths), one with spot
  revocations (revocation path).  These pin the RNG stream derivations.
- ``montage25_sweep_fingerprint.json`` — a reduced learning sweep
  (workers=1), pinning the parallel runner's seed plumbing end to end.
- ``service_stream_fixture.json`` — the reference streaming-service
  scenario (3 tenants, 20 Montage-20 jobs, Poisson arrivals, seed 42):
  the arrival trace plus the full per-job metrics JSON under each of
  the three admission policies, pinning the multi-tenant timeline.

Regenerate (only after an *intentional* behaviour change) with::

    PYTHONPATH=src python tests/golden/regen_traces.py

and explain the drift in the commit message.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

TRACE_FIXTURES = (
    "montage50_heft_trace.json",
    "montage50_reassign_episodes.json",
    "montage25_noisy_trace.json",
    "montage25_sweep_fingerprint.json",
    "service_stream_fixture.json",
)


def record_dict(rec: Any) -> Dict[str, Any]:
    """Full field dump of an ActivationRecord (floats kept exact)."""
    return {
        "activation_id": rec.activation_id,
        "activity": rec.activity,
        "vm_id": rec.vm_id,
        "ready_time": rec.ready_time,
        "start_time": rec.start_time,
        "finish_time": rec.finish_time,
        "stage_in_time": rec.stage_in_time,
        "attempts": rec.attempts,
        "failed": rec.failed,
    }


def result_dict(res: Any) -> Dict[str, Any]:
    """Full field dump of a SimulationResult."""
    return {
        "workflow_name": res.workflow_name,
        "makespan": res.makespan,
        "final_state": res.final_state,
        "records": [record_dict(r) for r in res.records],
    }


def build_heft_trace() -> Dict[str, Any]:
    """Montage-50 HEFT replay under the learning-environment models."""
    from repro.experiments.environments import fleet_for
    from repro.schedulers.base import PlanFollowingScheduler
    from repro.schedulers.heft import HeftScheduler
    from repro.sim.fluctuation import BurstThrottleFluctuation
    from repro.sim.simulator import WorkflowSimulator
    from repro.workflows.montage import montage

    wf = montage(50, seed=1)
    fleet = fleet_for(16)
    plan = HeftScheduler().plan(wf, fleet)
    sim = WorkflowSimulator(
        wf,
        fleet,
        PlanFollowingScheduler(plan),
        fluctuation=BurstThrottleFluctuation(
            credit_seconds=60.0, throttle_factor=2.0
        ),
        seed=0,
    )
    return result_dict(sim.run())


def build_reassign_episodes() -> Dict[str, Any]:
    """Per-episode history of the golden ReASSIgN learner configuration."""
    from repro.core.reassign import ReassignLearner, ReassignParams
    from repro.experiments.environments import fleet_for
    from repro.workflows.montage import montage

    params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=5)
    result = ReassignLearner(
        montage(50, seed=1), fleet_for(16), params, seed=1
    ).learn()
    return {
        "episodes": [e.to_dict() for e in result.episodes],
        "simulated_makespan": result.simulated_makespan,
        "simulated_learning_time": result.simulated_learning_time,
        "plan": json.loads(result.plan.to_json()),
    }


def build_noisy_traces() -> Dict[str, Any]:
    """Online runs through the stochastic model stack (RNG stream pins)."""
    from repro.experiments.environments import fleet_for
    from repro.schedulers.online import GreedyOnlineScheduler
    from repro.sim.failures import BernoulliFailures
    from repro.sim.fluctuation import GaussianFluctuation
    from repro.sim.migration import PeriodicMigrations
    from repro.sim.simulator import WorkflowSimulator
    from repro.sim.spot import PoissonRevocations
    from repro.workflows.montage import montage

    noisy = WorkflowSimulator(
        montage(25, seed=2),
        fleet_for(16),
        GreedyOnlineScheduler(),
        fluctuation=GaussianFluctuation(sigma=0.2),
        failures=BernoulliFailures(probability=0.15),
        migrations=PeriodicMigrations(mean_interval=120.0),
        max_attempts=5,
        seed=7,
    ).run()
    spot = WorkflowSimulator(
        montage(25, seed=2),
        fleet_for(16),
        GreedyOnlineScheduler(),
        revocations=PoissonRevocations(
            mean_lifetime=300.0, spot_fraction=0.5
        ),
        seed=11,
    ).run()
    return {"noisy": result_dict(noisy), "spot": result_dict(spot)}


def build_sweep_fingerprint(workers: int = 1) -> Dict[str, Any]:
    """Reduced-sweep fingerprints (the determinism-test shape, frozen)."""
    from repro.experiments.sweeps import run_paper_sweep
    from repro.workflows.montage import montage

    sweep = run_paper_sweep(
        workflow=montage(25, seed=1),
        vcpu_fleets=(16,),
        grid=(0.1, 1.0),
        episodes=3,
        seed=1,
        workers=workers,
        timing="simulated",
    )
    return {
        str(vcpus): [
            {
                "alpha": rec.alpha,
                "gamma": rec.gamma,
                "epsilon": rec.epsilon,
                "learning_time": rec.learning_time,
                "simulated_makespan": rec.simulated_makespan,
                "plan": json.loads(rec.result.plan.to_json()),
            }
            for rec in records
        ]
        for vcpus, records in sweep.records.items()
    }


def build_service_stream() -> Dict[str, Any]:
    """Reference streaming-service run: trace + metrics per policy.

    The scenario is ``reference_scenario()``'s defaults (3 equal-weight
    tenants, 20 Montage-20 jobs, Poisson rate 0.02/s, seed 42).  The
    fixture pins both the arrival schedule itself and the complete
    per-job metrics JSON under every shipped admission policy, so any
    drift in arrivals, the shared-fleet timeline, or a policy's
    tie-breaking shows up as a byte diff.
    """
    from repro.service import (
        SchedulerService,
        ServiceConfig,
        available_policies,
        reference_scenario,
        schedule_to_json,
    )

    arrivals = reference_scenario()
    out: Dict[str, Any] = {
        "trace": json.loads(schedule_to_json(arrivals.schedule())),
        "metrics": {},
    }
    for policy in available_policies():
        result = SchedulerService(
            arrivals, ServiceConfig(policy=policy), seed=42
        ).run()
        out["metrics"][policy] = json.loads(
            result.to_json(include_jobs=True)
        )
    return out


BUILDERS = {
    "montage50_heft_trace.json": build_heft_trace,
    "montage50_reassign_episodes.json": build_reassign_episodes,
    "montage25_noisy_trace.json": build_noisy_traces,
    "montage25_sweep_fingerprint.json": build_sweep_fingerprint,
    "service_stream_fixture.json": build_service_stream,
}


def normalize(obj: Any) -> Any:
    """JSON round-trip, so built dicts compare equal to loaded fixtures."""
    return json.loads(json.dumps(obj, sort_keys=True))


def main() -> None:
    for name, build in BUILDERS.items():
        path = GOLDEN_DIR / name
        path.write_text(
            json.dumps(build(), sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
