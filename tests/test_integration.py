"""End-to-end integration tests across all subsystems."""

import pytest

from repro.core import ReassignLearner, ReassignParams
from repro.dag import parse_dax, write_dax
from repro.schedulers import (
    HeftScheduler,
    PlanFollowingScheduler,
    SchedulingPlan,
)
from repro.scicumulus import (
    CloudProfile,
    ProvenanceStore,
    SciCumulusRL,
    workflow_from_xml,
    workflow_to_xml,
)
from repro.sim import (
    BurstThrottleFluctuation,
    WorkflowSimulator,
    t2_fleet,
)
from repro.workflows import make_workflow, montage


class TestPipelineEndToEnd:
    def test_dax_to_cloud(self, tmp_path):
        """DAX on disk -> parsed -> learned -> executed -> provenance."""
        wf = montage(25, seed=5)
        dax_path = tmp_path / "wf.dax"
        write_dax(wf, dax_path)
        loaded = parse_dax(dax_path.read_text(), "from-dax")

        store = ProvenanceStore(tmp_path / "prov.db")
        swfms = SciCumulusRL(provenance=store, seed=2)
        report = swfms.run_workflow(
            loaded, {"t2.micro": 2, "t2.2xlarge": 1},
            "reassign", ReassignParams(episodes=5),
        )
        assert report.execution.succeeded
        assert store.execution_history(loaded.name)

    def test_plan_transfers_between_sim_and_mpi(self, montage25):
        """A plan learned in the simulator executes identically-shaped in
        the MPI engine (same assignment, comparable makespan)."""
        fleet = t2_fleet(2, 1)
        params = ReassignParams(episodes=10)
        result = ReassignLearner(montage25, fleet, params, seed=3).learn()

        swfms = SciCumulusRL(cloud_profile=CloudProfile.calm(), seed=3)
        report = swfms.execute_plan(
            montage25, {"t2.micro": 2, "t2.2xlarge": 1}, result.plan, "RL"
        )
        assert report.execution.assignment == result.plan.assignment
        # calm cloud: within 2x of the simulated estimate
        assert report.total_execution_time < result.simulated_makespan * 2

    def test_plan_json_crosses_process_boundary(self, montage25, tmp_path):
        """Plans serialize to JSON, reload and stay executable."""
        fleet = t2_fleet(2, 1)
        plan = HeftScheduler().plan(montage25, fleet)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        reloaded = SchedulingPlan.from_json(path.read_text())
        result = WorkflowSimulator(
            montage25, fleet, PlanFollowingScheduler(reloaded)
        ).run()
        assert result.succeeded

    def test_sim_and_spec_roundtrip_consistency(self, montage25):
        """XML round trip must not change simulation results."""
        fleet = t2_fleet(2, 1)
        direct = WorkflowSimulator(
            montage25, fleet, HeftScheduler().as_online(montage25, fleet),
            seed=1,
        ).run()
        round_tripped = workflow_from_xml(workflow_to_xml(montage25))
        via_xml = WorkflowSimulator(
            round_tripped, fleet,
            HeftScheduler().as_online(round_tripped, fleet),
            seed=1,
        ).run()
        assert via_xml.makespan == pytest.approx(direct.makespan, rel=1e-6)


class TestPaperShapeChecks:
    """Cheap versions of the qualitative claims the benchmarks verify."""

    def test_reassign_concentrates_on_2xlarge(self):
        wf = montage(50, seed=1)
        fleet = t2_fleet(8, 1)
        params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=40)
        result = ReassignLearner(wf, fleet, params, seed=11).learn()
        heft = HeftScheduler().plan(wf, fleet)
        big = 8
        rl_share = sum(1 for v in result.plan.assignment.values() if v == big)
        heft_share = sum(1 for v in heft.assignment.values() if v == big)
        assert rl_share > heft_share

    def test_heft_spreads_entry_activations(self):
        wf = montage(50, seed=1)
        fleet = t2_fleet(8, 1)
        plan = HeftScheduler().plan(wf, fleet)
        entry_vms = {plan.vm_of(i) for i in wf.entries()}
        # Table V: "the initial activations are distributed sequentially
        # among the available virtual machines"
        assert len(entry_vms) >= 7

    def test_throttling_punishes_micro_heavy_plans(self):
        """The mechanism behind Table IV's crossover."""
        wf = montage(50, seed=1)
        fleet = t2_fleet(8, 1)
        throttle = BurstThrottleFluctuation(credit_seconds=100.0,
                                            throttle_factor=2.0)
        micro_heavy = SchedulingPlan(
            assignment={i: i % 8 for i in wf.activation_ids}
        )
        big_heavy = SchedulingPlan(
            assignment={i: 8 for i in wf.activation_ids}
        )

        def makespan(plan):
            return WorkflowSimulator(
                wf, fleet, PlanFollowingScheduler(plan),
                fluctuation=throttle, seed=0,
            ).run().makespan

        assert makespan(big_heavy) < makespan(micro_heavy)

    def test_learning_curve_trends_down(self):
        """Ablation A4's premise: more episodes -> better plans.

        Under the textbook ε convention (the default, and the reading the
        paper's data supports), ε = 0.1 episodes are 90% exploitation, so
        episode makespans improve directly as Q converges.
        """
        wf = montage(50, seed=1)
        fleet = t2_fleet(8, 1)
        params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=60)
        result = ReassignLearner(wf, fleet, params, seed=11).learn()
        curve = result.makespan_curve()
        first_third = sum(curve[:20]) / 20
        last_third = sum(curve[-20:]) / 20
        assert last_third < first_third
        # and regardless of ε, the extracted plan beats a random episode
        assert result.simulated_makespan < curve[0]


class TestAllWorkflowsThroughPipeline:
    @pytest.mark.parametrize("name", ["montage", "cybershake", "epigenomics",
                                      "inspiral", "sipht"])
    def test_every_workflow_end_to_end(self, name):
        wf = make_workflow(name, seed=2)
        swfms = SciCumulusRL(cloud_profile=CloudProfile.calm(), seed=4)
        report = swfms.run_workflow(
            wf, {"t2.micro": 2, "t2.2xlarge": 1},
            "reassign", ReassignParams(episodes=3),
        )
        assert report.execution.succeeded
        assert len(report.execution.records) == len(wf)
