"""Characterization test: the streaming service vs its golden fixture.

``tests/golden/service_stream_fixture.json`` freezes the reference
scenario (3 tenants, 20 Montage-20 jobs, Poisson arrivals, seed 42):
the arrival trace plus the full per-job metrics JSON under every
shipped admission policy.  Rebuilding the fixture from scratch must be
*byte-identical* to the frozen file — any drift in the arrival
generator, the shared-fleet timeline, or a policy's tie-breaking is a
behaviour change that must be explained and regenerated via::

    PYTHONPATH=src python tests/golden/regen_traces.py
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent / "golden"))

from regen_traces import GOLDEN_DIR, build_service_stream  # noqa: E402

pytestmark = pytest.mark.service

FIXTURE = GOLDEN_DIR / "service_stream_fixture.json"


@pytest.fixture(scope="module")
def frozen() -> dict:
    return json.loads(FIXTURE.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def rebuilt() -> dict:
    return build_service_stream()


def test_fixture_bytes_identical(rebuilt) -> None:
    """The strongest form: regeneration reproduces the file's bytes."""
    expected = FIXTURE.read_bytes()
    actual = (
        json.dumps(rebuilt, sort_keys=True, indent=1) + "\n"
    ).encode("utf-8")
    assert actual == expected


def test_fixture_covers_all_policies(frozen) -> None:
    from repro.service import available_policies

    assert sorted(frozen["metrics"]) == available_policies()


def test_trace_shape(frozen) -> None:
    """The frozen arrival trace matches the reference scenario's shape."""
    jobs = frozen["trace"]["jobs"]
    assert len(jobs) == 20
    assert sorted({j["tenant"] for j in jobs}) == [
        "tenant-0", "tenant-1", "tenant-2",
    ]
    arrivals = [j["arrival_time"] for j in jobs]
    assert arrivals == sorted(arrivals)
    assert all(t >= 0.0 for t in arrivals)


def test_all_jobs_complete_under_every_policy(frozen) -> None:
    for policy, metrics in frozen["metrics"].items():
        assert metrics["n_jobs"] == 20, policy
        assert metrics["n_failed"] == 0, policy
        assert len(metrics["jobs"]) == 20, policy


def test_frozen_metrics_are_internally_consistent(frozen) -> None:
    """Aggregates in the fixture recompute exactly from the job records."""
    from repro.service import percentile

    for policy, metrics in frozen["metrics"].items():
        latencies = [j["latency"] for j in metrics["jobs"]]
        assert metrics["p50_latency"] == percentile(latencies, 50.0), policy
        assert metrics["p99_latency"] == percentile(latencies, 99.0), policy
        end = max(j["completion_time"] for j in metrics["jobs"])
        assert metrics["end_time"] == end, policy
