"""Regression pins for the PR-6 single-tenancy audit.

The one-shot simulator was written for exactly one workflow on one
fleet; several of its structures silently assume that.  This file pins
the hazards found in the audit and the isolation the streaming service
builds on top of them:

- an :class:`~repro.sim.kernel.EpisodeKernel` refuses a second live
  :class:`~repro.sim.kernel.EpisodeState` — the constructor would scrub
  the shared workflow/fleet objects out from under the first;
- concurrent same-workflow jobs get **independent file-placement maps**:
  workflow generators reuse file names across instances, so sharing the
  name-keyed dict would leak data locality (and hence stage-in costs)
  between tenants;
- per-job **estimate caches** are isolated: activation ids restart at 0
  for every generated DAG, so a shared id-keyed
  :class:`~repro.sim.estimates.NominalEstimateCache` would serve one
  job's costs to another;
- VM slot tokens are **fleet-unique across jobs**: two jobs both running
  activation 0 on one VM must occupy two slots, not one;
- the ``action_pairs`` interner is content-addressed and survives
  ``scrub()`` without leaking state between episodes (identical content
  → identical object; changed content → fresh object);
- a full service run leaves the shared fleet pristine (every slot
  free), so fleet objects are reusable by construction.
"""

from __future__ import annotations

import pytest

from repro.experiments.environments import fleet_for
from repro.service import (
    FifoPolicy,
    FleetTimeline,
    Job,
    SchedulerService,
    ServiceConfig,
    TraceArrivals,
)
from repro.service.timeline import JobRun, _slot_key
from repro.sim.kernel import EpisodeKernel, EpisodeState
from repro.util.validate import ValidationError
from repro.workflows.registry import make_workflow

pytestmark = pytest.mark.service


def _job(job_id: int, tenant: str = "tenant-0", *, seed: int = 1,
         arrival: float = 0.0) -> Job:
    return Job(
        job_id=job_id,
        tenant=tenant,
        workflow="cybershake",
        size=5,
        arrival_time=arrival,
        workflow_seed=seed,
    )


def _run(job: Job, fleet) -> JobRun:
    workflow = make_workflow(job.workflow, job.size, seed=job.workflow_seed)
    return JobRun(
        job, workflow, fleet,
        latency=0.05, upload_outputs=True, admit_time=0.0,
    )


class TestKernelSingleTenancyGuard:
    def test_second_episode_state_is_rejected(self) -> None:
        kernel = EpisodeKernel(
            make_workflow("cybershake", 5, seed=1), fleet_for(16)
        )
        with pytest.raises(ValidationError, match="already owns"):
            EpisodeState(kernel)

    def test_kernel_remains_usable_after_rejection(self) -> None:
        kernel = EpisodeKernel(
            make_workflow("cybershake", 5, seed=1), fleet_for(16)
        )
        with pytest.raises(ValidationError):
            EpisodeState(kernel)
        from repro.schedulers.online import GreedyOnlineScheduler

        first = kernel.run_episode(GreedyOnlineScheduler(), seed=0)
        again = kernel.run_episode(GreedyOnlineScheduler(), seed=0)
        assert first.makespan == again.makespan


class TestPerJobIsolation:
    def test_same_workflow_jobs_share_file_names(self) -> None:
        """The hazard itself: generated instances reuse file names."""
        wf_a = make_workflow("cybershake", 5, seed=1)
        wf_b = make_workflow("cybershake", 5, seed=2)
        names_a = {f.name for ac in wf_a.activations for f in ac.outputs}
        names_b = {f.name for ac in wf_b.activations for f in ac.outputs}
        assert names_a & names_b, (
            "expected overlapping output file names across instances — "
            "if generators now namespace files per instance, the "
            "per-job file_locations isolation rationale needs revisiting"
        )

    def test_file_locations_are_private_per_job(self) -> None:
        fleet = fleet_for(16)
        run_a = _run(_job(0, "tenant-0", seed=1), fleet)
        run_b = _run(_job(1, "tenant-1", seed=2), fleet)
        assert run_a.file_locations is not run_b.file_locations
        # publishing an output for job A must not change B's staging cost
        ac_b = run_b.activation(run_b.ready_ids[0])
        vm = fleet[0]
        before = run_b.estimates.stage_in_time(
            ac_b, vm, run_b.file_locations
        )
        shared_name = next(
            f.name
            for ac in run_a.workflow.activations
            for f in ac.outputs
        )
        run_a.file_locations[shared_name] = vm.id
        after = run_b.estimates.stage_in_time(
            ac_b, vm, run_b.file_locations
        )
        assert before == after

    def test_estimate_caches_are_private_per_job(self) -> None:
        """Activation ids restart at 0 per DAG: a shared id-keyed cache
        would hand job B the compute estimate of job A's activation 0."""
        fleet = fleet_for(16)
        run_a = _run(_job(0, seed=1), fleet)
        run_b = _run(_job(1, seed=2), fleet)
        assert run_a.estimates is not run_b.estimates
        ac_a = run_a.activation(0)
        ac_b = run_b.activation(0)
        vm = fleet[0]
        est_a = run_a.estimates.compute_time(ac_a, vm)
        est_b = run_b.estimates.compute_time(ac_b, vm)
        # distinct seeds → distinct runtimes; the caches must agree with
        # their own workflow, not with whichever job populated first
        assert est_a == run_a.estimates.compute_time(ac_a, vm)
        assert est_b == run_b.estimates.compute_time(ac_b, vm)
        if ac_a.runtime != ac_b.runtime:
            assert est_a != est_b

    def test_workflow_instances_are_private_per_job(self) -> None:
        fleet = fleet_for(16)
        run_a = _run(_job(0, seed=1), fleet)
        run_b = _run(_job(1, seed=1), fleet)  # same seed: same DAG shape
        assert run_a.workflow is not run_b.workflow
        first = run_a.ready_ids[0]
        run_a.start_running(run_a.activation(first))
        # job B's activation of the same id is untouched
        assert first in run_b.ready_ids
        assert run_b.activation(first).state.name == "READY"


class TestSlotTokens:
    def test_slot_keys_unique_across_jobs(self) -> None:
        seen = set()
        for job_id in (0, 1, 2, 1000):
            for activation_id in (0, 1, 5, 499):
                token = _slot_key(job_id, activation_id)
                assert token not in seen
                seen.add(token)

    def test_two_jobs_same_activation_id_occupy_two_slots(self) -> None:
        fleet = fleet_for(16)
        vm = max(fleet, key=lambda v: (v.capacity, -v.id))
        assert vm.capacity >= 2, "Table-I fleet should have a multi-core VM"
        vm.reset()
        vm.start(_slot_key(0, 0))
        vm.start(_slot_key(1, 0))
        assert len(vm.running) == 2

    def test_fleet_left_pristine_after_service_run(self) -> None:
        fleet = fleet_for(16)
        timeline = FleetTimeline(fleet, seed=3)
        jobs = [
            _job(0, "tenant-0", seed=1, arrival=0.0),
            _job(1, "tenant-1", seed=2, arrival=1.0),
            _job(2, "tenant-0", seed=3, arrival=2.0),
        ]
        result = timeline.run(jobs, FifoPolicy())
        assert result.n_jobs == 3
        assert result.n_failed == 0
        for vm in fleet:
            assert not vm.running, f"VM {vm.id} left with occupied slots"

    def test_timeline_is_single_use(self) -> None:
        fleet = fleet_for(16)
        timeline = FleetTimeline(fleet, seed=3)
        jobs = [_job(0)]
        timeline.run(jobs, FifoPolicy())
        with pytest.raises(ValidationError, match="single-use"):
            timeline.run(jobs, FifoPolicy())


class TestActionPairsInterner:
    def test_interner_survives_scrub_with_stable_identity(self) -> None:
        kernel = EpisodeKernel(
            make_workflow("cybershake", 5, seed=1), fleet_for(16)
        )
        state = kernel.state
        state.reset(0)
        first = state.action_pairs()
        state.scrub()
        state.reset(0)
        second = state.action_pairs()
        # same content after a scrub/reset cycle → the *same* object
        # (content-addressed interning, generation-independent)
        assert first == second
        assert first is second

    def test_interner_is_content_addressed(self) -> None:
        kernel = EpisodeKernel(
            make_workflow("cybershake", 5, seed=1), fleet_for(16)
        )
        state = kernel.state
        state.reset(0)
        before = state.action_pairs()
        ac = state.ready_view()[0]
        vm = state.idle_view()[0]
        state.start_running(ac, vm)
        after = state.action_pairs()
        assert after != before
        assert all(pair[0] != ac.id for pair in after)

    def test_service_runs_do_not_touch_kernel_interner(self) -> None:
        """The service path never constructs EpisodeStates at all, so a
        concurrent RL kernel's interner is untouched by a service run."""
        kernel = EpisodeKernel(
            make_workflow("cybershake", 5, seed=1), fleet_for(16)
        )
        state = kernel.state
        state.reset(0)
        pinned = state.action_pairs()
        SchedulerService(
            TraceArrivals([_job(0), _job(1, "tenant-1", seed=2)]),
            ServiceConfig(),
            seed=0,
        ).run()
        assert state.action_pairs() is pinned
