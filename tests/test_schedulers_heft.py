"""Tests for repro.schedulers.heft — the paper's baseline."""

import pytest

from repro.schedulers import HeftScheduler, PlanFollowingScheduler
from repro.schedulers.base import EstimateModel
from repro.schedulers.heft import upward_ranks
from repro.sim import WorkflowSimulator, ZeroCostNetwork, t2_fleet
from repro.sim.vm import VM_TYPES, Vm, VmType
from repro.util.validate import ValidationError

from tests.conftest import make_activation


class TestUpwardRanks:
    def test_ranks_decrease_along_edges(self, montage25, fleet16):
        ranks = upward_ranks(montage25, fleet16, EstimateModel())
        for p, c in montage25.edges:
            assert ranks[p] > ranks[c]

    def test_exit_rank_is_own_cost(self, chain, fleet_small):
        ranks = upward_ranks(chain, fleet_small, EstimateModel())
        # exit node 4 has runtime 5; all slots speed 1.0
        assert ranks[4] == pytest.approx(5.0)

    def test_chain_rank_accumulates(self, chain, fleet_small):
        ranks = upward_ranks(chain, fleet_small, EstimateModel())
        assert ranks[0] > ranks[1] > ranks[2] > ranks[3] > ranks[4]

    def test_empty_fleet_rejected(self, chain):
        with pytest.raises(ValidationError):
            upward_ranks(chain, [], EstimateModel())


class TestHeftPlan:
    def test_plan_covers_workflow(self, montage25, fleet16):
        plan = HeftScheduler().plan(montage25, fleet16)
        plan.validate_against(montage25, fleet16)
        assert plan.name == "HEFT"

    def test_priority_is_rank_order(self, montage25, fleet16):
        plan = HeftScheduler().plan(montage25, fleet16)
        ranks = upward_ranks(montage25, fleet16, EstimateModel())
        vals = [ranks[i] for i in plan.priority]
        assert vals == sorted(vals, reverse=True)

    def test_prefers_faster_processor_when_heterogeneous(self):
        wf_nodes = [make_activation(i, runtime=50.0) for i in range(3)]
        from repro.dag import Workflow

        wf = Workflow("three")
        for ac in wf_nodes:
            wf.add_activation(ac)
        slow = Vm(0, VmType("slow", 1, 0.5, 1.0, 0.0))
        fast = Vm(1, VmType("fast", 1, 2.0, 1.0, 0.0))
        plan = HeftScheduler().plan(wf, [slow, fast])
        # 3 independent equal tasks: fast VM takes at least two of them
        on_fast = sum(1 for v in plan.assignment.values() if v == 1)
        assert on_fast >= 2

    def test_single_slot_default_spreads_over_vms(self, montage50, fleet16):
        # WorkflowSim-style HEFT treats the 2xlarge as ONE processor, so
        # the 11 entry activations land on many distinct VMs (Table V)
        plan = HeftScheduler().plan(montage50, fleet16)
        entry_vms = {plan.vm_of(i) for i in montage50.entries()}
        assert len(entry_vms) >= 7

    def test_capacity_aware_variant_uses_slots(self, montage50, fleet16):
        plan = HeftScheduler(single_slot_vms=False).plan(montage50, fleet16)
        big_id = 8
        on_big = sum(1 for v in plan.assignment.values() if v == big_id)
        single = HeftScheduler().plan(montage50, fleet16)
        on_big_single = sum(1 for v in single.assignment.values() if v == big_id)
        assert on_big > on_big_single

    def test_beats_naive_spread(self, montage25, fleet16):
        from repro.schedulers import RoundRobinScheduler

        heft_result = WorkflowSimulator(
            montage25, fleet16,
            PlanFollowingScheduler(HeftScheduler().plan(montage25, fleet16)),
            network=ZeroCostNetwork(),
        ).run()
        rr_result = WorkflowSimulator(
            montage25, fleet16, RoundRobinScheduler(),
            network=ZeroCostNetwork(),
        ).run()
        assert heft_result.makespan <= rr_result.makespan * 1.05

    def test_deterministic(self, montage25, fleet16):
        a = HeftScheduler().plan(montage25, fleet16)
        b = HeftScheduler().plan(montage25, fleet16)
        assert a.assignment == b.assignment and a.priority == b.priority

    def test_single_vm(self, chain):
        vm = Vm(0, VM_TYPES["t2.micro"])
        plan = HeftScheduler().plan(chain, [vm])
        assert set(plan.assignment.values()) == {0}

    def test_as_online_helper(self, chain, fleet_small):
        sched = HeftScheduler().as_online(chain, fleet_small)
        assert isinstance(sched, PlanFollowingScheduler)
        result = WorkflowSimulator(
            chain, fleet_small, sched, network=ZeroCostNetwork()
        ).run()
        assert result.succeeded
