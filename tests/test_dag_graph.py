"""Tests for repro.dag.graph — the workflow DAG."""

import networkx as nx
import pytest

from repro.dag import ActivationState, CycleError, Workflow
from repro.util.validate import ValidationError

from tests.conftest import make_activation


class TestConstruction:
    def test_empty(self):
        wf = Workflow("w")
        assert len(wf) == 0
        assert wf.entries() == [] and wf.exits() == []

    def test_duplicate_id_rejected(self):
        wf = Workflow("w")
        wf.add_activation(make_activation(0))
        with pytest.raises(ValidationError):
            wf.add_activation(make_activation(0))

    def test_unknown_endpoint_rejected(self):
        wf = Workflow("w")
        wf.add_activation(make_activation(0))
        with pytest.raises(ValidationError):
            wf.add_dependency(0, 99)
        with pytest.raises(ValidationError):
            wf.add_dependency(99, 0)

    def test_self_edge_rejected(self):
        wf = Workflow("w")
        wf.add_activation(make_activation(0))
        with pytest.raises(CycleError):
            wf.add_dependency(0, 0)

    def test_cycle_rejected_eagerly(self, chain):
        with pytest.raises(CycleError):
            chain.add_dependency(4, 0)

    def test_duplicate_edge_idempotent(self, diamond):
        before = diamond.edge_count
        diamond.add_dependency(0, 1)
        assert diamond.edge_count == before

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Workflow("")


class TestQueries:
    def test_parents_children(self, diamond):
        assert diamond.parents(3) == [1, 2]
        assert diamond.children(0) == [1, 2]
        assert diamond.parents(0) == []
        assert diamond.children(3) == []

    def test_entries_exits(self, diamond):
        assert diamond.entries() == [0]
        assert diamond.exits() == [3]

    def test_edges_sorted(self, diamond):
        assert diamond.edges == [(0, 1), (0, 2), (1, 3), (2, 3)]

    def test_contains_iter(self, diamond):
        assert 2 in diamond and 9 not in diamond
        assert sorted(ac.id for ac in diamond) == [0, 1, 2, 3]

    def test_unknown_activation_raises(self, diamond):
        with pytest.raises(ValidationError):
            diamond.activation(42)


class TestTopologicalOrder:
    def test_respects_dependencies(self, diamond):
        order = diamond.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for p, c in diamond.edges:
            assert pos[p] < pos[c]

    def test_deterministic_ties_by_id(self, fork_join):
        assert fork_join.topological_order() == list(range(8))

    def test_cache_invalidated_on_mutation(self, chain):
        chain.topological_order()
        chain.add_activation(make_activation(99))
        assert 99 in chain.topological_order()

    def test_matches_networkx(self, montage25):
        g = nx.DiGraph(montage25.edges)
        g.add_nodes_from(montage25.activation_ids)
        assert nx.is_directed_acyclic_graph(g)
        order = montage25.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for p, c in g.edges:
            assert pos[p] < pos[c]


class TestLevels:
    def test_diamond(self, diamond):
        assert diamond.levels() == [[0], [1, 2], [3]]

    def test_chain(self, chain):
        assert chain.levels() == [[0], [1], [2], [3], [4]]

    def test_levels_cover_all_nodes(self, montage25):
        flat = [n for lvl in montage25.levels() for n in lvl]
        assert sorted(flat) == montage25.activation_ids


class TestDataDependencies:
    def test_infer(self, data_diamond):
        added = data_diamond.infer_data_dependencies()
        assert added == 4
        assert data_diamond.edges == [(0, 1), (0, 2), (1, 3), (2, 3)]

    def test_infer_idempotent(self, data_diamond):
        data_diamond.infer_data_dependencies()
        assert data_diamond.infer_data_dependencies() == 0

    def test_two_producers_rejected(self):
        from repro.dag import File

        wf = Workflow("w")
        wf.add_activation(make_activation(0, outputs=[File("x", 1)]))
        wf.add_activation(make_activation(1, outputs=[File("x", 1)]))
        with pytest.raises(ValidationError):
            wf.infer_data_dependencies()


class TestExecutionState:
    def test_reset_states(self, diamond):
        diamond.reset_states()
        assert diamond.activation(0).state is ActivationState.READY
        for i in (1, 2, 3):
            assert diamond.activation(i).state is ActivationState.LOCKED
        assert diamond.ready_ids() == [0]

    def test_release_children(self, diamond):
        diamond.reset_states()
        a0 = diamond.activation(0)
        a0.transition(ActivationState.RUNNING)
        a0.transition(ActivationState.FINISHED)
        released = diamond.release_children(0)
        assert released == [1, 2]
        assert diamond.ready_ids() == [1, 2]

    def test_release_waits_for_all_parents(self, diamond):
        diamond.reset_states()
        for i in (0, 1):
            ac = diamond.activation(i)
            if ac.state is ActivationState.LOCKED:
                ac.transition(ActivationState.READY)
            ac.transition(ActivationState.RUNNING)
            ac.transition(ActivationState.FINISHED)
            diamond.release_children(i)
        # node 3 still locked: parent 2 unfinished
        assert diamond.activation(3).state is ActivationState.LOCKED

    def test_workflow_state_transitions(self, diamond):
        diamond.reset_states()
        assert diamond.workflow_state() == "available"
        a0 = diamond.activation(0)
        a0.transition(ActivationState.RUNNING)
        assert diamond.workflow_state() == "unavailable"
        a0.transition(ActivationState.FINISHED)
        diamond.release_children(0)
        assert diamond.workflow_state() == "available"

    def test_workflow_state_success(self, chain):
        chain.reset_states()
        for i in range(5):
            ac = chain.activation(i)
            if ac.state is ActivationState.LOCKED:
                ac.transition(ActivationState.READY)
            ac.transition(ActivationState.RUNNING)
            ac.transition(ActivationState.FINISHED)
            chain.release_children(i)
        assert chain.workflow_state() == "successfully finished"

    def test_workflow_state_failure(self, chain):
        chain.reset_states()
        a0 = chain.activation(0)
        a0.transition(ActivationState.RUNNING)
        a0.transition(ActivationState.FAILED)
        # cascade as the simulator would
        for i in range(1, 5):
            chain.activation(i).transition(ActivationState.FAILED)
        assert chain.workflow_state() == "finished with failure"


class TestTransforms:
    def test_copy_independent(self, diamond):
        cp = diamond.copy()
        cp.reset_states()
        assert diamond.activation(0).state is ActivationState.LOCKED
        assert len(cp) == len(diamond)
        assert cp.edges == diamond.edges

    def test_subgraph(self, diamond):
        sub = diamond.subgraph([0, 1, 3])
        assert sorted(sub.activation_ids) == [0, 1, 3]
        assert sub.edges == [(0, 1), (1, 3)]

    def test_subgraph_unknown_id(self, diamond):
        with pytest.raises(ValidationError):
            diamond.subgraph([0, 42])

    def test_relabel_sequential(self):
        wf = Workflow("gaps")
        wf.add_activation(make_activation(10))
        wf.add_activation(make_activation(20))
        wf.add_dependency(10, 20)
        rel = wf.relabel_sequential()
        assert rel.activation_ids == [0, 1]
        assert rel.edges == [(0, 1)]

    def test_files_conflicting_sizes_rejected(self):
        from repro.dag import File

        wf = Workflow("w")
        wf.add_activation(make_activation(0, outputs=[File("x", 1)]))
        wf.add_activation(make_activation(1, inputs=[File("x", 2)]))
        with pytest.raises(ValidationError):
            wf.files()

    def test_files_collects_unique(self, data_diamond):
        names = set(data_diamond.files())
        assert names == {"a.dat", "b.dat", "c.dat"}

    def test_validate_ok(self, montage25):
        montage25.validate()  # should not raise
