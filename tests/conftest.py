"""Shared fixtures: small canonical DAGs and fleets."""

import pytest

from repro.dag import Activation, File, Workflow
from repro.sim import t2_fleet
from repro.workflows import montage


def make_activation(ac_id, activity="prog", runtime=10.0, inputs=(), outputs=()):
    """Convenience activation builder used across the test suite."""
    return Activation(
        id=ac_id,
        activity=activity,
        runtime=runtime,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
    )


@pytest.fixture
def diamond():
    """A 4-node diamond: 0 -> {1, 2} -> 3."""
    wf = Workflow("diamond")
    for i, rt in enumerate([10.0, 20.0, 5.0, 8.0]):
        wf.add_activation(make_activation(i, runtime=rt))
    wf.add_dependency(0, 1)
    wf.add_dependency(0, 2)
    wf.add_dependency(1, 3)
    wf.add_dependency(2, 3)
    return wf


@pytest.fixture
def chain():
    """A 5-node chain 0 -> 1 -> 2 -> 3 -> 4."""
    wf = Workflow("chain")
    for i in range(5):
        wf.add_activation(make_activation(i, runtime=float(i + 1)))
    for i in range(4):
        wf.add_dependency(i, i + 1)
    return wf


@pytest.fixture
def fork_join():
    """1 entry, 6 parallel middles, 1 exit."""
    wf = Workflow("fork-join")
    wf.add_activation(make_activation(0, runtime=3.0))
    for i in range(1, 7):
        wf.add_activation(make_activation(i, runtime=10.0))
        wf.add_dependency(0, i)
    wf.add_activation(make_activation(7, runtime=3.0))
    for i in range(1, 7):
        wf.add_dependency(i, 7)
    return wf


@pytest.fixture
def data_diamond():
    """Diamond whose edges are implied by files (for data-dep inference)."""
    wf = Workflow("data-diamond")
    a = File("a.dat", 1e6)
    b = File("b.dat", 2e6)
    c = File("c.dat", 3e6)
    wf.add_activation(make_activation(0, outputs=[a]))
    wf.add_activation(make_activation(1, inputs=[a], outputs=[b]))
    wf.add_activation(make_activation(2, inputs=[a], outputs=[c]))
    wf.add_activation(make_activation(3, inputs=[b, c]))
    return wf


@pytest.fixture
def montage25():
    """A small Montage for faster end-to-end tests."""
    return montage(25, seed=3)


@pytest.fixture
def montage50():
    """The paper's workload."""
    return montage(50, seed=1)


@pytest.fixture
def fleet16():
    """Table I's smallest fleet: 8 micro + 1 2xlarge = 16 vCPUs."""
    return t2_fleet(8, 1)


@pytest.fixture
def fleet_small():
    """A tiny heterogeneous fleet for unit tests: 2 micro + 1 2xlarge."""
    return t2_fleet(2, 1)
