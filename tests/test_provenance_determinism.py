"""Provenance determinism: two same-seed runs -> byte-identical records.

This is the dynamic counterpart of reprolint rule RL002: after the
wall-clock reads in :mod:`repro.scicumulus.provenance` were replaced by
an injectable clock (defaulting to logical/simulated time), the full SQL
dump of the provenance database must be reproducible from the seed
alone.
"""

from __future__ import annotations

from repro.scicumulus.provenance import LogicalClock, ProvenanceStore
from repro.scicumulus.swfms import SciCumulusRL
from repro.schedulers.heft import HeftScheduler
from repro.sim.metrics import ActivationRecord, SimulationResult
from repro.workflows.montage import montage

FLEET = {"t2.micro": 2, "t2.2xlarge": 1}


def _run_once(seed: int, scheduler) -> str:
    swfms = SciCumulusRL(seed=seed)
    workflow = montage(n_activations=20, seed=seed)
    swfms.run_workflow(workflow, FLEET, scheduler=scheduler)
    return swfms.provenance.dump()


def test_same_seed_heft_runs_produce_byte_identical_provenance():
    sched_a, sched_b = HeftScheduler(), HeftScheduler()
    assert _run_once(11, sched_a) == _run_once(11, sched_b)


def test_same_seed_learning_runs_record_identical_activations():
    """The RL mode too: executions + activations replay byte-for-byte.

    (The ``learning_runs`` payload embeds the wall-clock learning_time
    metric — a reported duration, not simulated state — so the byte
    comparison covers the execution tables, plus the learned plan via
    the recorded activations.)
    """

    def tables(seed: int):
        swfms = SciCumulusRL(seed=seed)
        workflow = montage(n_activations=20, seed=seed)
        swfms.run_workflow(workflow, FLEET, scheduler="reassign")
        conn = swfms.provenance._conn
        executions = list(conn.execute("SELECT * FROM executions ORDER BY id"))
        activations = list(
            conn.execute(
                "SELECT * FROM activations ORDER BY execution_id, activation_id"
            )
        )
        return executions, activations

    assert tables(23) == tables(23)


def test_different_seeds_differ():
    assert _run_once(11, HeftScheduler()) != _run_once(12, HeftScheduler())


def test_logical_clock_is_deterministic_and_monotone():
    a, b = LogicalClock(), LogicalClock()
    seq_a = [a() for _ in range(5)]
    seq_b = [b() for _ in range(5)]
    assert seq_a == seq_b == sorted(seq_a)


def _toy_result() -> SimulationResult:
    return SimulationResult(
        workflow_name="wf",
        records=[ActivationRecord(0, "a", 3, 0.0, 1.0, 5.0)],
        makespan=5.0,
        final_state="successfully finished",
    )


def test_default_store_clock_stamps_are_reproducible():
    def created_ats():
        store = ProvenanceStore()
        store.record_execution(_toy_result(), "HEFT", "fleetA")
        store.record_execution(_toy_result(), "HEFT", "fleetA")
        return [
            row[0]
            for row in store._conn.execute(
                "SELECT created_at FROM executions ORDER BY id"
            )
        ]

    assert created_ats() == created_ats() == [0.0, 1.0]


def test_explicit_timestamp_overrides_clock():
    store = ProvenanceStore()
    store.record_execution(_toy_result(), "HEFT", "fleetA", timestamp=123.5)
    (created_at,) = store._conn.execute(
        "SELECT created_at FROM executions"
    ).fetchone()
    assert created_at == 123.5
