"""Tests for the cost-aware reward and the online execution mode."""

import pytest

from repro.core import ReassignLearner, ReassignParams, ReassignScheduler
from repro.rl import CostAwarePerformanceReward, PerformanceReward
from repro.scicumulus import CloudProfile, MpiConfig, MpiOverheadNetwork, execute_online
from repro.schedulers import GreedyOnlineScheduler
from repro.sim import SharedStorageNetwork, t2_fleet
from repro.util.validate import ValidationError

from tests.conftest import make_activation
from repro.dag import File


class TestCostAwareReward:
    def test_weight_zero_matches_paper_reward(self, fleet16):
        plain = PerformanceReward(mu=0.5, rho=0.5)
        costed = CostAwarePerformanceReward(fleet16, cost_weight=0.0)
        for vm, te, tf in [(0, 10.0, 1.0), (8, 20.0, 2.0), (3, 5.0, 0.5)]:
            assert plain.step(vm, te, tf) == pytest.approx(
                costed.step(vm, te, tf)
            )
        assert plain.global_index() == pytest.approx(costed.global_index())

    def test_expensive_vm_index_inflated(self, fleet16):
        costed = CostAwarePerformanceReward(fleet16, cost_weight=1.0)
        # same observed times on a micro (cheap) and the 2xlarge (32x price)
        costed.observe(0, 10.0, 0.0)
        costed.observe(8, 10.0, 0.0)
        assert costed.vm_index(8) > costed.vm_index(0)

    def test_price_ratio_applied(self, fleet16):
        costed = CostAwarePerformanceReward(fleet16, cost_weight=1.0)
        ratio = 0.3712 / 0.0116  # 2xlarge over micro hourly price
        costed.observe(8, 10.0, 0.0)
        # index = mu * te_eff = 0.5 * 10 * (1 + ratio)
        assert costed.vm_index(8) == pytest.approx(0.5 * 10.0 * (1 + ratio))

    def test_unknown_vm_treated_as_reference(self, fleet16):
        costed = CostAwarePerformanceReward(fleet16, cost_weight=1.0)
        costed.observe(99, 10.0, 0.0)
        assert costed.vm_index(99) == pytest.approx(0.5 * 10.0 * 2.0)

    def test_punishes_expensive_outlier(self, fleet16):
        costed = CostAwarePerformanceReward(fleet16, cost_weight=2.0)
        for vm in range(8):  # micros
            costed.observe(vm, 10.0, 1.0)
        costed.observe(8, 10.0, 1.0)  # same speed, 32x the price
        assert costed.partial_reward(8) == -1.0
        assert costed.partial_reward(0) == 1.0

    def test_learner_integration_shifts_placement(self, fleet16):
        from repro.workflows import montage

        wf = montage(25, seed=3)
        params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=15)
        free = ReassignLearner(wf, fleet16, params, seed=4).learn()
        priced = ReassignLearner(
            wf, fleet16, params, seed=4,
            reward=CostAwarePerformanceReward(fleet16, cost_weight=2.0),
        ).learn()
        big = 8
        n_free = sum(1 for v in free.plan.assignment.values() if v == big)
        n_priced = sum(1 for v in priced.plan.assignment.values() if v == big)
        assert n_priced <= n_free

    def test_validation(self, fleet16):
        with pytest.raises(ValidationError):
            CostAwarePerformanceReward([], cost_weight=0.5)
        with pytest.raises(ValidationError):
            CostAwarePerformanceReward(fleet16, cost_weight=-1.0)


class TestMpiOverheadNetwork:
    def test_adds_latency(self, fleet16):
        inner = SharedStorageNetwork(latency=0.0)
        mpi = MpiConfig(message_latency=0.5, master_overhead=0.25)
        net = MpiOverheadNetwork(inner, mpi)
        ac = make_activation(0, inputs=[File("a", 0.0)], outputs=[File("b", 0.0)])
        vm = fleet16[0]
        assert net.stage_in_time(ac, vm, {}) == pytest.approx(
            0.75 + inner.stage_in_time(ac, vm, {})
        )
        assert net.stage_out_time(ac, vm) == pytest.approx(
            0.5 + inner.stage_out_time(ac, vm)
        )

    def test_defaults(self, fleet16):
        net = MpiOverheadNetwork()
        ac = make_activation(0)
        assert net.stage_in_time(ac, fleet16[0], {}) > 0


class TestExecuteOnline:
    def test_plain_online_scheduler(self, montage25, fleet16):
        result = execute_online(
            montage25, fleet16, GreedyOnlineScheduler(),
            profile=CloudProfile.calm(), seed=2,
        )
        assert result.succeeded
        assert len(result.records) == 25

    def test_reassign_online_with_trained_q(self, montage25, fleet16):
        params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=10)
        learner = ReassignLearner(montage25, fleet16, params, seed=5)
        learner.learn()
        online = ReassignScheduler(
            params, qtable=learner.scheduler.qtable, seed=5, learning=False
        )
        result = execute_online(
            montage25, fleet16, online, profile=CloudProfile.calm(), seed=5
        )
        assert result.succeeded

    def test_deterministic(self, montage25, fleet16):
        a = execute_online(montage25, fleet16, GreedyOnlineScheduler(), seed=9)
        b = execute_online(montage25, fleet16, GreedyOnlineScheduler(), seed=9)
        assert a.makespan == b.makespan

    def test_noise_profiles_order(self, montage25, fleet16):
        calm = execute_online(
            montage25, fleet16, GreedyOnlineScheduler(),
            profile=CloudProfile.calm(), seed=3,
        )
        stormy = execute_online(
            montage25, fleet16, GreedyOnlineScheduler(),
            profile=CloudProfile.stormy(), seed=3,
        )
        assert stormy.makespan > calm.makespan

    def test_usage_cost_positive(self, montage25, fleet16):
        result = execute_online(
            montage25, fleet16, GreedyOnlineScheduler(), seed=2
        )
        assert 0 < result.usage_cost() < result.cost()
