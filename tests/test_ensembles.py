"""Tests for repro.workflows.ensembles — multi-workflow campaigns."""

import pytest

from repro.core import ReassignLearner, ReassignParams
from repro.schedulers import GreedyOnlineScheduler
from repro.sim import WorkflowSimulator, t2_fleet
from repro.util.validate import ValidationError
from repro.workflows import (
    cybershake,
    merge_workflows,
    montage,
    montage_ensemble,
    split_assignment,
)


class TestMerge:
    def test_sizes_and_components(self):
        merged = merge_workflows([montage(25, seed=1), cybershake(30, seed=2)])
        assert len(merged) == 55
        assert len(merged.entries()) == (
            len(montage(25, seed=1).entries())
            + len(cybershake(30, seed=2).entries())
        )

    def test_no_cross_component_edges(self):
        a, b = montage(25, seed=1), montage(25, seed=2)
        merged = merge_workflows([a, b])
        for parent, child in merged.edges:
            assert (parent < 25) == (child < 25)

    def test_file_namespaces_disjoint(self):
        merged = merge_workflows([montage(25, seed=1), montage(25, seed=1)])
        merged.validate()  # identical instances would collide without prefixes
        names = set(merged.files())
        assert any(n.startswith("wf0/") for n in names)
        assert any(n.startswith("wf1/") for n in names)

    def test_runtime_conserved(self):
        a, b = montage(25, seed=1), cybershake(30, seed=2)
        merged = merge_workflows([a, b])
        total = sum(ac.runtime for ac in merged)
        assert total == pytest.approx(
            sum(ac.runtime for ac in a) + sum(ac.runtime for ac in b)
        )

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            merge_workflows([])


class TestEnsembleExecution:
    def test_simulatable(self, fleet16):
        ensemble = montage_ensemble(3, 25, seed=5)
        assert len(ensemble) == 75
        result = WorkflowSimulator(
            ensemble, fleet16, GreedyOnlineScheduler()
        ).run()
        assert result.succeeded
        assert len(result.records) == 75

    def test_ensemble_queues_more_than_single(self, fleet16):
        single = WorkflowSimulator(
            montage(25, seed=5), fleet16, GreedyOnlineScheduler()
        ).run()
        ensemble = WorkflowSimulator(
            montage_ensemble(4, 25, seed=5), fleet16, GreedyOnlineScheduler()
        ).run()
        # contention: the ensemble's mean queue time must exceed the single
        # instance's (this is what makes mu's balance matter)
        assert ensemble.mean_queue_time > single.mean_queue_time

    def test_reassign_learns_on_ensemble(self, fleet16):
        ensemble = montage_ensemble(2, 25, seed=5)
        params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=5)
        result = ReassignLearner(ensemble, fleet16, params, seed=3).learn()
        assert result.simulated_makespan > 0
        result.plan.validate_against(ensemble, fleet16)


class TestSplitAssignment:
    def test_round_trip(self):
        merged = merge_workflows([montage(25, seed=1), montage(11, seed=2)])
        assignment = {i: i % 4 for i in merged.activation_ids}
        parts = split_assignment(assignment, [25, 11])
        assert len(parts) == 2
        assert sorted(parts[0]) == list(range(25))
        assert sorted(parts[1]) == list(range(11))
        assert parts[1][0] == assignment[25]

    def test_coverage_validated(self):
        with pytest.raises(ValidationError):
            split_assignment({0: 0}, [2])
