"""Property-based tests: the simulator must uphold its invariants on
arbitrary random DAGs, fleets and schedulers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dag import Activation, Workflow
from repro.schedulers import (
    FcfsScheduler,
    GreedyOnlineScheduler,
    HeftScheduler,
    MinMinScheduler,
    PlanFollowingScheduler,
    RandomScheduler,
)
from repro.sim import GaussianFluctuation, WorkflowSimulator, ZeroCostNetwork
from repro.sim.vm import VM_TYPES, Vm


@st.composite
def random_dag(draw):
    """A random DAG of 1..20 activations with forward-only edges."""
    n = draw(st.integers(min_value=1, max_value=20))
    wf = Workflow("random")
    for i in range(n):
        runtime = draw(st.floats(min_value=0.1, max_value=50.0))
        wf.add_activation(Activation(id=i, activity=f"act{i % 3}", runtime=runtime))
    for child in range(1, n):
        n_parents = draw(st.integers(min_value=0, max_value=min(3, child)))
        parents = draw(
            st.lists(
                st.integers(min_value=0, max_value=child - 1),
                min_size=n_parents, max_size=n_parents, unique=True,
            )
        )
        for p in parents:
            wf.add_dependency(p, child)
    return wf


@st.composite
def random_fleet(draw):
    """1..4 VMs mixing micro and 2xlarge."""
    n = draw(st.integers(min_value=1, max_value=4))
    names = draw(
        st.lists(
            st.sampled_from(["t2.micro", "t2.2xlarge", "t2.medium"]),
            min_size=n, max_size=n,
        )
    )
    return [Vm(i, VM_TYPES[name]) for i, name in enumerate(names)]


def check_invariants(wf, result, vms):
    assert result.succeeded
    assert sorted(r.activation_id for r in result.records) == wf.activation_ids
    finish = {r.activation_id: r.finish_time for r in result.records}
    start = {r.activation_id: r.start_time for r in result.records}
    # dependencies respected
    for p, c in wf.edges:
        assert start[c] >= finish[p] - 1e-9
    # capacity respected
    capacity = {vm.id: vm.capacity for vm in vms}
    events = []
    for r in result.records:
        events.append((r.start_time, 1, r.vm_id))
        events.append((r.finish_time, -1, r.vm_id))
    events.sort(key=lambda e: (e[0], e[1]))
    load = {vm.id: 0 for vm in vms}
    for _, delta, vm_id in events:
        load[vm_id] += delta
        assert 0 <= load[vm_id] <= capacity[vm_id]
    # makespan consistency
    assert result.makespan == pytest.approx(max(finish.values()))


class TestSimulatorProperties:
    @settings(max_examples=40, deadline=None)
    @given(wf=random_dag(), fleet=random_fleet(),
           seed=st.integers(min_value=0, max_value=1000))
    def test_online_schedulers_preserve_invariants(self, wf, fleet, seed):
        result = WorkflowSimulator(
            wf, fleet, RandomScheduler(seed=seed),
            network=ZeroCostNetwork(), seed=seed,
        ).run()
        check_invariants(wf, result, fleet)

    @settings(max_examples=25, deadline=None)
    @given(wf=random_dag(), fleet=random_fleet())
    def test_static_plans_preserve_invariants(self, wf, fleet):
        for cls in (HeftScheduler, MinMinScheduler):
            plan = cls().plan(wf, fleet)
            result = WorkflowSimulator(
                wf, fleet, PlanFollowingScheduler(plan),
                network=ZeroCostNetwork(),
            ).run()
            check_invariants(wf, result, fleet)
            assert result.assignment == plan.assignment

    @settings(max_examples=25, deadline=None)
    @given(wf=random_dag(), fleet=random_fleet(),
           seed=st.integers(min_value=0, max_value=1000))
    def test_fluctuation_preserves_invariants(self, wf, fleet, seed):
        result = WorkflowSimulator(
            wf, fleet, GreedyOnlineScheduler(),
            network=ZeroCostNetwork(),
            fluctuation=GaussianFluctuation(0.3),
            seed=seed,
        ).run()
        check_invariants(wf, result, fleet)

    @settings(max_examples=25, deadline=None)
    @given(wf=random_dag(), fleet=random_fleet())
    def test_makespan_lower_bounds(self, wf, fleet):
        """Makespan >= critical path / max speed and >= serial / capacity."""
        from repro.dag import critical_path_length, serial_runtime

        result = WorkflowSimulator(
            wf, fleet, FcfsScheduler(), network=ZeroCostNetwork()
        ).run()
        max_speed = max(vm.type.speed for vm in fleet)
        total_slots = sum(vm.capacity for vm in fleet)
        cp_bound = critical_path_length(wf) / max_speed
        area_bound = serial_runtime(wf) / (total_slots * max_speed)
        assert result.makespan >= cp_bound - 1e-6
        assert result.makespan >= area_bound - 1e-6
