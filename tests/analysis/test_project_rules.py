"""Cross-file rule tests (RL008–RL013): fixture pairs, scoping, severity.

Project rules need a whole-program index, so these tests drive
:func:`repro.analysis.analyze_sources` with *virtual* library paths
(``src/repro/...``) — the same trick the per-file fixture tests use,
extended to multi-file programs for the cross-module rules.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis import ALL_PROJECT_RULES, analyze_sources, extract_facts
from repro.analysis.project import FileFacts, ProjectIndex, _module_of
from repro.analysis.registry import ALL_RULE_CODES, rule_catalog, rule_range
from repro.analysis.rules import FileContext

FIXTURES = Path(__file__).parent / "fixtures"

#: single-file rules: code -> (virtual path used for scoping, expected flags)
CASES = {
    "RL009": ("src/repro/provenance/fixture.py", 2),
    "RL010": ("src/repro/workflows/fixture.py", 3),
    "RL011": ("src/repro/sim/fixture.py", 3),
    "RL012": ("src/repro/core/fixture.py", 3),
    "RL013": ("src/repro/sim/fixture.py", 3),
}

#: RL008 needs two modules; (virtual path, fixture file) per side
RL008_FLAG = [
    ("src/repro/service/fixture_a.py", "rl008_flag_a.py"),
    ("src/repro/rl/fixture_b.py", "rl008_flag_b.py"),
]
RL008_OK = [
    ("src/repro/service/fixture_a.py", "rl008_ok_a.py"),
    ("src/repro/rl/fixture_b.py", "rl008_ok_b.py"),
]


def _read(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


def _analyze(named):
    return analyze_sources([(path, _read(name)) for path, name in named])


def _by_rule(findings, code):
    return [f for f in findings if f.rule == code]


# -- fixture pairs ------------------------------------------------------------


@pytest.mark.parametrize("code", sorted(CASES))
def test_rule_flags_its_fixture(code):
    virtual_path, expected = CASES[code]
    findings = _analyze([(virtual_path, f"{code.lower()}_flag.py")])
    flagged = _by_rule(findings, code)
    assert len(flagged) == expected, [str(f) for f in findings]
    for f in flagged:
        assert f.path == virtual_path
        assert f.line > 0
        assert f.severity in {"error", "warning"}


@pytest.mark.parametrize("code", sorted(CASES))
def test_rule_passes_clean_fixture(code):
    virtual_path, _ = CASES[code]
    findings = _analyze([(virtual_path, f"{code.lower()}_ok.py")])
    assert _by_rule(findings, code) == [], [str(f) for f in findings]


def test_every_project_rule_has_a_fixture_pair():
    codes = {rule.code for rule in ALL_PROJECT_RULES}
    assert codes == set(CASES) | {"RL008"}


# -- RL008: cross-module stream collisions ------------------------------------


def test_rl008_flags_both_colliding_sites():
    findings = _by_rule(_analyze(RL008_FLAG), "RL008")
    assert len(findings) == 2, [str(f) for f in findings]
    by_path = {f.path: f for f in findings}
    assert set(by_path) == {path for path, _ in RL008_FLAG}
    # each site names the *other* module and the colliding stream
    assert "repro.rl.fixture_b" in by_path["src/repro/service/fixture_a.py"].message
    assert "repro.service.fixture_a" in by_path["src/repro/rl/fixture_b.py"].message
    for f in findings:
        assert "shared-jitter" in f.message


def test_rl008_passes_module_prefixed_names():
    assert _by_rule(_analyze(RL008_OK), "RL008") == []


def test_rl008_ignores_collisions_outside_the_library():
    named = [
        ("tests/helpers/fixture_a.py", "rl008_flag_a.py"),
        ("tests/helpers/fixture_b.py", "rl008_flag_b.py"),
    ]
    assert _by_rule(_analyze(named), "RL008") == []


def test_rl008_same_module_repetition_is_not_a_collision():
    named = [("src/repro/service/fixture_a.py", "rl008_ok_a.py")]
    assert _by_rule(_analyze(named), "RL008") == []


# -- severities ---------------------------------------------------------------


def test_rl013_set_reduction_is_error_values_view_is_warning():
    path, _ = CASES["RL013"]
    findings = _by_rule(_analyze([(path, "rl013_flag.py")]), "RL013")
    severities = sorted((f.line, f.severity) for f in findings)
    assert [sev for _, sev in severities] == ["error", "warning", "warning"]


def test_rl011_and_rl012_apply_only_in_scope():
    # the same sources under non-library paths produce nothing
    for code in ("RL011", "RL012", "RL013"):
        findings = _analyze([("tools/fixture.py", f"{code.lower()}_flag.py")])
        assert _by_rule(findings, code) == []
    # RL011 is sim-scoped even inside the library
    findings = _analyze([("src/repro/core/fixture.py", "rl011_flag.py")])
    assert _by_rule(findings, "RL011") == []


# -- suppression of project-rule findings -------------------------------------


def test_project_finding_is_suppressible_inline():
    path, _ = CASES["RL013"]
    source = _read("rl013_flag.py").replace(
        "return sum(times.values())  # flag (warning): dict insertion order",
        "return sum(times.values())  # reprolint: disable=RL013",
    )
    findings = [
        f for f in analyze_sources([(path, source)]) if f.rule == "RL013"
    ]
    # the suppressed line is gone; the other two sites still flag
    assert len(findings) == 2
    assert all("values" not in f.message or f.line != 8 for f in findings)


# -- the real tree obeys its own rules ----------------------------------------


def test_real_events_module_passes_rl011():
    events = Path(__file__).resolve().parents[2] / "src" / "repro" / "sim" / "events.py"
    source = events.read_text(encoding="utf-8")
    findings = analyze_sources([("src/repro/sim/events.py", source)])
    assert _by_rule(findings, "RL011") == [], [str(f) for f in findings]


def test_events_priority_table_matches_enum():
    from repro.sim.events import PRIORITY_TABLE, EventType

    assert PRIORITY_TABLE == tuple((m.name, m.value) for m in EventType)


# -- facts plumbing -----------------------------------------------------------


def test_file_facts_roundtrip_through_json_dicts():
    source = _read("rl011_flag.py") + _read("rl013_flag.py")
    ctx = FileContext("src/repro/sim/fixture.py", ast.parse(source), source)
    facts = extract_facts(ctx)
    assert facts.event_enums and facts.unordered_reductions
    clone = FileFacts.from_dict(facts.to_dict())
    assert clone == facts
    # and the round-trip drives project rules identically
    for rule in ALL_PROJECT_RULES:
        original = list(rule.check(ProjectIndex([facts])))
        replayed = list(rule.check(ProjectIndex([clone])))
        assert original == replayed


@pytest.mark.parametrize(
    "path,module",
    [
        ("src/repro/rl/double_q.py", "repro.rl.double_q"),
        ("src/repro/sim/__init__.py", "repro.sim"),
        ("src\\repro\\util\\rng.py", "repro.util.rng"),
        ("tools/bench_guard.py", "bench_guard"),
    ],
)
def test_module_of(path, module):
    assert _module_of(path) == module


# -- registry -----------------------------------------------------------------


def test_rule_range_spans_all_rules():
    assert rule_range() == "RL001-RL015"
    assert len(ALL_RULE_CODES) == 15


def test_rule_catalog_kinds():
    catalog = rule_catalog()
    kinds = {code: kind for code, kind, _ in catalog}
    assert kinds["RL001"] == "per-file"
    assert kinds["RL008"] == "project"
    assert [code for code, _, _ in catalog] == sorted(ALL_RULE_CODES)
