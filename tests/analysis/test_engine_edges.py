"""Engine edge cases: suppression syntax, baseline hygiene, and the cache.

The cache contract under test is the strong one the docs promise:
findings are byte-identical with and without ``cache_file``, across
warm/cold runs, and regardless of the order the paths are given in.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.cache import AnalysisCache, ruleset_fingerprint
from repro.analysis.engine import (
    BaselineError,
    analyze_project,
    analyze_source,
    apply_baseline,
    iter_python_files,
    load_baseline,
    suppressed_lines,
    write_baseline,
)
from repro.analysis.cli import main
from repro.analysis.registry import select_rules
from repro.analysis.report import render

SIM = "src/repro/sim/x.py"


# -- suppression comments -----------------------------------------------------


def test_multi_code_suppression_silences_both_rules():
    noisy = "import random\nimport time\nrandom.seed(int(time.time()))\n"
    assert {f.rule for f in analyze_source(noisy, SIM)} >= {"RL001", "RL002"}
    quiet = noisy.replace(
        "time.time()))", "time.time()))  # reprolint: disable=RL001,RL002"
    )
    assert analyze_source(quiet, SIM) == []


def test_disable_all_silences_every_rule_on_the_line():
    source = (
        "import random\n"
        "import time\n"
        "random.seed(int(time.time()))  # reprolint: disable=all\n"
    )
    assert analyze_source(source, SIM) == []


def test_suppression_on_the_opening_line_of_a_multiline_call():
    source = (
        "import time\n"
        "stamp = time.time(  # reprolint: disable=RL002\n"
        ")\n"
    )
    assert analyze_source(source, SIM) == []


def test_suppression_on_a_continuation_line_does_not_apply():
    # the comment must sit on the line the finding is *reported* at
    # (the call's first line), not on a later continuation line
    source = (
        "import time\n"
        "stamp = time.time(\n"
        ")  # reprolint: disable=RL002\n"
    )
    assert [f.rule for f in analyze_source(source, SIM)] == ["RL002"]


def test_suppressed_lines_parses_spacing_and_accumulates():
    source = (
        "a = 1  # reprolint: disable=RL001 , RL003\n"
        "b = 2  # reprolint: disable=all\n"
        "c = 3  # unrelated comment\n"
    )
    assert suppressed_lines(source) == {
        1: {"RL001", "RL003"},
        2: {"all"},
    }


# -- baseline hygiene ---------------------------------------------------------


def _baseline_error(tmp_path, text):
    bad = tmp_path / "baseline.json"
    bad.write_text(text, encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(str(bad))


def test_baseline_must_be_an_object_with_findings(tmp_path):
    _baseline_error(tmp_path, "[]")
    _baseline_error(tmp_path, '{"version": 1}')


def test_baseline_rejects_invalid_json_and_missing_file(tmp_path):
    _baseline_error(tmp_path, "{not json")
    with pytest.raises(BaselineError):
        load_baseline(str(tmp_path / "missing.json"))


def test_baseline_rejects_malformed_entries(tmp_path):
    _baseline_error(tmp_path, '{"findings": [{"rule": "RL001"}]}')
    _baseline_error(tmp_path, '{"findings": [null]}')


def test_baseline_roundtrip_is_idempotent(tmp_path):
    noisy = "import time\nstamp = time.time()\n"
    findings = analyze_source(noisy, SIM)
    assert findings
    baseline = tmp_path / "baseline.json"

    write_baseline(str(baseline), findings)
    first = baseline.read_text(encoding="utf-8")
    assert apply_baseline(findings, load_baseline(str(baseline))) == []

    # re-writing the same findings is byte-stable
    write_baseline(str(baseline), findings)
    assert baseline.read_text(encoding="utf-8") == first

    # a baseline written from *zero* findings silences nothing
    write_baseline(str(baseline), [])
    assert load_baseline(str(baseline)) == set()
    assert apply_baseline(findings, set()) == findings


# -- incremental cache --------------------------------------------------------


@pytest.fixture()
def tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "a.py").write_text("X = 1\n", encoding="utf-8")
    (pkg / "b.py").write_text(
        "import time\nstamp = time.time()\n", encoding="utf-8"
    )
    (pkg / "c.py").write_text(
        "def busy(times):\n"
        "    return sum(times.values())  # reprolint: disable=RL013\n",
        encoding="utf-8",
    )
    return tmp_path


def test_cold_then_warm_run_hits_every_file(tree, tmp_path):
    cache = str(tmp_path / "cache.json")
    cold = analyze_project([str(tree)], cache_file=cache)
    assert cold.cache is not None
    assert (cold.cache.hits, cold.cache.misses) == (0, 3)

    warm = analyze_project([str(tree)], cache_file=cache)
    assert warm.cache is not None
    assert (warm.cache.hits, warm.cache.misses) == (3, 0)
    assert warm.findings == cold.findings
    assert warm.files_scanned == cold.files_scanned


def test_findings_identical_with_and_without_cache(tree, tmp_path):
    cache = str(tmp_path / "cache.json")
    plain = analyze_project([str(tree)])
    assert plain.cache is None
    for _ in range(2):  # cold, then warm
        cached = analyze_project([str(tree)], cache_file=cache)
        assert cached.findings == plain.findings
        assert render(cached.findings, cached.files_scanned, "json") == render(
            plain.findings, plain.files_scanned, "json"
        )


def test_changed_file_misses_alone(tree, tmp_path):
    cache = str(tmp_path / "cache.json")
    analyze_project([str(tree)], cache_file=cache)
    target = tree / "src" / "repro" / "sim" / "b.py"
    target.write_text("X = 2\n", encoding="utf-8")

    warm = analyze_project([str(tree)], cache_file=cache)
    assert warm.cache is not None
    assert (warm.cache.hits, warm.cache.misses) == (2, 1)
    assert [f for f in warm.findings if f.rule == "RL002"] == []


def test_rule_selection_changes_the_fingerprint(tree, tmp_path):
    cache = str(tmp_path / "cache.json")
    analyze_project([str(tree)], cache_file=cache)

    rules, project_rules = select_rules("RL002")
    subset = analyze_project(
        [str(tree)], rules=rules, project_rules=project_rules, cache_file=cache
    )
    assert subset.cache is not None
    assert subset.cache.hits == 0  # full-set entries must not replay
    assert {f.rule for f in subset.findings} == {"RL002"}


def test_corrupt_cache_is_treated_as_empty(tree, tmp_path):
    cache = tmp_path / "cache.json"
    cache.write_text("{definitely not json", encoding="utf-8")
    report = analyze_project([str(tree)], cache_file=str(cache))
    assert report.cache is not None
    assert (report.cache.hits, report.cache.misses) == (0, 3)
    # and the bad file was replaced by a loadable one
    payload = json.loads(cache.read_text(encoding="utf-8"))
    assert sorted(payload) == ["files", "fingerprint", "version"]
    assert len(payload["files"]) == 3


def test_suppressions_survive_the_cache(tree, tmp_path):
    cache = str(tmp_path / "cache.json")
    cold = analyze_project([str(tree)], cache_file=cache)
    warm = analyze_project([str(tree)], cache_file=cache)
    # c.py's RL013 site is suppressed; the (live) project phase must
    # honour the *cached* suppression map on warm runs too
    assert [f for f in cold.findings if f.rule == "RL013"] == []
    assert [f for f in warm.findings if f.rule == "RL013"] == []
    assert warm.cache is not None and warm.cache.hits == 3


def test_path_order_does_not_change_findings(tree):
    sim = tree / "src" / "repro" / "sim"
    forward = analyze_project([str(sim / "a.py"), str(sim / "b.py"),
                               str(sim / "c.py")])
    backward = analyze_project([str(sim / "c.py"), str(sim / "b.py"),
                                str(sim / "a.py")])
    assert forward.findings == backward.findings
    assert forward.files_scanned == backward.files_scanned


def test_fingerprint_is_stable_and_code_sensitive():
    a = ruleset_fingerprint(["RL001", "RL002"])
    b = ruleset_fingerprint(["RL002", "RL001"])
    c = ruleset_fingerprint(["RL001"])
    assert a == b  # order-insensitive (codes are sorted)
    assert a != c


def test_cache_survives_missing_parent_gracefully(tree, tmp_path):
    # an unwritable cache path must not fail the lint gate
    cache = str(tmp_path / "no" / "such" / "dir" / "cache.json")
    report = analyze_project([str(tree)], cache_file=cache)
    assert report.cache is not None
    assert report.cache.misses == 3


# -- CLI integration for the new knobs ----------------------------------------


def test_cli_cache_flag_reports_hits_on_the_warm_run(tree, tmp_path, capsys):
    cache = str(tmp_path / "cache.json")
    assert main([str(tree), "--cache-file", cache]) == 1
    cold_out = capsys.readouterr().out
    assert "(cache: 0 hits, 3 misses)" in cold_out
    assert main([str(tree), "--cache-file", cache]) == 1
    warm_out = capsys.readouterr().out
    assert "(cache: 3 hits, 0 misses)" in warm_out
    # findings themselves are byte-identical across the two runs
    assert cold_out.split(" (cache")[0] == warm_out.split(" (cache")[0]


def test_cli_exclude_path_fragment(tree, capsys):
    assert main([str(tree), "--exclude", "repro/sim"]) == 0
    assert "0 findings in 0 file(s)" in capsys.readouterr().out


def test_cli_exclude_bare_directory_name(tree, capsys):
    assert main([str(tree), "--exclude", "sim"]) == 0
    assert "0 findings in 0 file(s)" in capsys.readouterr().out


def test_fixture_exclusion_is_scoped_to_tests_analysis(tmp_path):
    # satellite regression: only tests/analysis/fixtures is exempt —
    # a fixtures/ directory elsewhere is linted like any other package
    linted = tmp_path / "src" / "repro" / "fixtures"
    linted.mkdir(parents=True)
    (linted / "data.py").write_text("X = 1\n", encoding="utf-8")
    exempt = tmp_path / "tests" / "analysis" / "fixtures"
    exempt.mkdir(parents=True)
    (exempt / "bad.py").write_text("X = 1\n", encoding="utf-8")
    files = iter_python_files([str(tmp_path)])
    assert [f.name for f in files] == ["data.py"]
