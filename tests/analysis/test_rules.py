"""Per-rule fixture tests: each rule must flag its `_flag` snippet and
stay silent on the `_ok` twin.

Fixtures live under ``tests/analysis/fixtures/`` — a directory name the
engine excludes from discovery by default, so ``reprolint src/ tests/``
stays clean while the deliberately-seeded violations remain on disk.
Each fixture is analyzed under a *virtual* path inside the scope its
rule applies to (e.g. ``src/repro/sim/…`` for RL003).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_source
from repro.analysis.findings import SYNTAX_ERROR_RULE
from repro.analysis.rules import ALL_RULES

FIXTURES = Path(__file__).parent / "fixtures"

#: rule code -> (virtual path used for scoping, expected flag count)
CASES = {
    "RL001": ("src/repro/workflows/fixture.py", 4),
    "RL002": ("src/repro/scicumulus/fixture.py", 3),
    "RL003": ("src/repro/sim/fixture.py", 2),
    "RL004": ("src/repro/experiments/fixture.py", 3),
    "RL005": ("src/repro/sim/fixture.py", 3),
    "RL006": ("src/repro/workflows/fixture.py", 3),
    "RL007": ("src/repro/schedulers/fixture.py", 2),
    "RL014": ("src/repro/sim/fixture.py", 5),
    "RL015": ("src/repro/rl/fixture.py", 6),
}


def _analyze_fixture(name: str, virtual_path: str):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return analyze_source(source, virtual_path)


@pytest.mark.parametrize("code", sorted(CASES))
def test_rule_flags_its_fixture(code):
    virtual_path, expected = CASES[code]
    findings = _analyze_fixture(f"{code.lower()}_flag.py", virtual_path)
    flagged = [f for f in findings if f.rule == code]
    assert len(flagged) == expected, [str(f) for f in findings]
    for f in flagged:
        assert f.path == virtual_path
        assert f.line > 0
        assert code in str(f)


@pytest.mark.parametrize("code", sorted(CASES))
def test_rule_passes_clean_fixture(code):
    virtual_path, _ = CASES[code]
    findings = _analyze_fixture(f"{code.lower()}_ok.py", virtual_path)
    assert [f for f in findings if f.rule == code] == []


def test_every_rule_has_a_fixture_pair():
    codes = {rule.code for rule in ALL_RULES}
    assert codes == set(CASES)
    for code in codes:
        assert (FIXTURES / f"{code.lower()}_flag.py").is_file()
        assert (FIXTURES / f"{code.lower()}_ok.py").is_file()


# -- rule scoping -------------------------------------------------------------


def test_rl001_rl002_do_not_apply_outside_the_library():
    source = "import time\nimport random\nrandom.seed(1)\nt = time.time()\n"
    assert analyze_source(source, "tests/test_foo.py") == []
    findings = analyze_source(source, "src/repro/sim/foo.py")
    assert {f.rule for f in findings} == {"RL001", "RL002"}


def test_rl003_scoped_to_ordering_sensitive_packages():
    source = "def f(xs):\n    return [x for x in set(xs)]\n"
    assert analyze_source(source, "src/repro/workflows/foo.py") == []
    assert [f.rule for f in analyze_source(source, "src/repro/rl/foo.py")] == [
        "RL003"
    ]
    assert [
        f.rule for f in analyze_source(source, "src/repro/schedulers/foo.py")
    ] == ["RL003"]


def test_rl007_scoped_to_decision_loop_packages():
    source = (
        "def f(ctx):\n"
        "    return [(a, v) for a in ctx.ready_activations"
        " for v in ctx.idle_vms]\n"
    )
    assert analyze_source(source, "src/repro/sim/foo.py") == []
    for pkg in ("schedulers", "rl", "core"):
        assert [
            f.rule for f in analyze_source(source, f"src/repro/{pkg}/foo.py")
        ] == ["RL007"]


def test_rl004_applies_everywhere_including_tests():
    source = "t = Task(key=1, fn=lambda p, s: p)\n"
    assert [f.rule for f in analyze_source(source, "tests/test_foo.py")] == [
        "RL004"
    ]


# -- suppression --------------------------------------------------------------


def test_same_line_suppression_by_code():
    source = (
        "import time\n"
        "t = time.time()  # reprolint: disable=RL002\n"
        "u = time.time()\n"
    )
    findings = analyze_source(source, "src/repro/sim/foo.py")
    assert [f.line for f in findings] == [3]


def test_suppression_disable_all_and_multiple_codes():
    source = (
        "import time, random\n"
        "t = time.time()  # reprolint: disable=all\n"
        "u = random.random()  # reprolint: disable=RL001,RL002\n"
    )
    assert analyze_source(source, "src/repro/sim/foo.py") == []


def test_suppression_of_wrong_code_does_not_hide_finding():
    source = "import time\nt = time.time()  # reprolint: disable=RL001\n"
    findings = analyze_source(source, "src/repro/sim/foo.py")
    assert [f.rule for f in findings] == ["RL002"]


# -- parse failures -----------------------------------------------------------


def test_syntax_error_reported_as_rl000():
    findings = analyze_source("def broken(:\n", "src/repro/sim/foo.py")
    assert [f.rule for f in findings] == [SYNTAX_ERROR_RULE]


# -- resolution details -------------------------------------------------------


def test_aliased_numpy_import_is_resolved():
    source = "import numpy.random as npr\nnpr.shuffle([1, 2])\n"
    assert [f.rule for f in analyze_source(source, "src/repro/rl/foo.py")] == [
        "RL001"
    ]


def test_local_variable_shadowing_random_is_not_flagged():
    # no `import random` -> the name is just a local, not the module
    source = "def f(random):\n    return random.random()\n"
    assert analyze_source(source, "src/repro/rl/foo.py") == []


def test_from_import_of_wall_clock_is_resolved():
    source = "from time import monotonic\nx = monotonic()\n"
    assert [f.rule for f in analyze_source(source, "src/repro/sim/foo.py")] == [
        "RL002"
    ]
