"""SARIF 2.1.0 output: structural checks plus schema validation.

The structural tests always run; the schema test validates against the
vendored subset in ``sarif-2.1.0-subset.schema.json`` and is skipped
when ``jsonschema`` is not installed (CI's test job does not ship it).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cache import CacheStats
from repro.analysis.findings import Finding
from repro.analysis.registry import ALL_RULE_CODES
from repro.analysis.report import render

SCHEMA_PATH = Path(__file__).parent / "sarif-2.1.0-subset.schema.json"

FINDINGS = [
    Finding(
        path="src/repro/sim/x.py",
        line=3,
        col=8,
        rule="RL002",
        message="wall-clock read",
    ),
    Finding(
        path="src/repro/service/metrics.py",
        line=12,
        col=0,
        rule="RL013",
        message="sum over dict.values()",
        severity="warning",
    ),
]


def _log(findings=FINDINGS, cache=None):
    return json.loads(render(findings, 2, "sarif", cache))


def test_sarif_envelope():
    log = _log()
    assert log["version"] == "2.1.0"
    assert log["$schema"] == "https://json.schemastore.org/sarif-2.1.0.json"
    (run,) = log["runs"]
    assert run["tool"]["driver"]["name"] == "reprolint"
    assert run["columnKind"] == "utf16CodeUnits"
    assert run["properties"]["filesScanned"] == 2


def test_sarif_rule_catalog_covers_every_rule():
    (run,) = _log()["runs"]
    ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert ids == sorted(ALL_RULE_CODES)
    for rule in run["tool"]["driver"]["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["properties"]["kind"] in {"per-file", "project"}


def test_sarif_results_carry_location_level_and_rule_index():
    (run,) = _log()["runs"]
    first, second = run["results"]
    assert first["ruleId"] == "RL002" and first["level"] == "error"
    assert second["ruleId"] == "RL013" and second["level"] == "warning"
    region = first["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 3
    assert region["startColumn"] == 9  # SARIF columns are 1-based
    rules = run["tool"]["driver"]["rules"]
    assert rules[first["ruleIndex"]]["id"] == "RL002"


def test_sarif_carries_cache_counters():
    (run,) = _log(cache=CacheStats(hits=5, misses=2))["runs"]
    assert run["properties"]["cacheHits"] == 5
    assert run["properties"]["cacheMisses"] == 2


def test_sarif_is_deterministic():
    assert render(FINDINGS, 2, "sarif") == render(list(FINDINGS), 2, "sarif")


@pytest.mark.parametrize("findings", [[], FINDINGS])
def test_sarif_validates_against_vendored_schema(findings):
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    jsonschema.validate(_log(findings, cache=CacheStats(1, 1)), schema)


def test_vendored_schema_rejects_a_bad_log():
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    bad = _log()
    bad["runs"][0]["results"][0]["level"] = "fatal"  # not a SARIF level
    with pytest.raises(jsonschema.ValidationError):
        jsonschema.validate(bad, schema)
