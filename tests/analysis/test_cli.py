"""End-to-end tests for the reprolint CLI: self-scan, formats, baseline."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.engine import (
    BaselineError,
    analyze_paths,
    iter_python_files,
    load_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

DIRTY = (
    "import time\n"
    "import random\n"
    "random.seed(7)\n"
    "stamp = time.time()\n"
)


@pytest.fixture()
def dirty_tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text(DIRTY, encoding="utf-8")
    return tmp_path


def _run(args):
    """Invoke main() from the repo root regardless of the test cwd."""
    return main(args)


# -- the repo gate ------------------------------------------------------------


def test_repo_tree_is_reprolint_clean(capsys):
    """The acceptance gate: `reprolint src/ tests/` exits 0 on this repo."""
    src = str(REPO_ROOT / "src")
    tests = str(REPO_ROOT / "tests")
    assert _run([src, tests]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_repo_gate_with_committed_empty_baseline(capsys):
    baseline = REPO_ROOT / "reprolint-baseline.json"
    assert baseline.is_file()
    assert load_baseline(str(baseline)) == set()
    rc = _run(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests"), "--baseline", str(baseline)]
    )
    assert rc == 0


def test_console_entry_point_via_module(capsys):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout


# -- findings & exit codes ----------------------------------------------------


def test_dirty_tree_exits_1_with_text_findings(dirty_tree, capsys):
    assert _run([str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out and "RL002" in out
    assert "dirty.py" in out


def test_missing_path_exits_2(dirty_tree, capsys):
    assert _run([str(dirty_tree / "nope")]) == 2
    assert "error" in capsys.readouterr().err


def test_unknown_select_code_exits_2(capsys):
    assert _run(["--select", "RL999", "src"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_select_restricts_rules(dirty_tree, capsys):
    assert _run([str(dirty_tree), "--select", "RL002"]) == 1
    out = capsys.readouterr().out
    assert "RL002" in out and "RL001" not in out


def test_list_rules(capsys):
    assert _run(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
        assert code in out


# -- output formats -----------------------------------------------------------


def test_json_format_is_machine_readable(dirty_tree, capsys):
    assert _run([str(dirty_tree), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_scanned"] == 1
    rules = {f["rule"] for f in payload["findings"]}
    assert rules == {"RL001", "RL002"}
    for f in payload["findings"]:
        assert set(f) == {"path", "line", "col", "rule", "message", "severity"}
        assert f["severity"] in {"error", "warning"}


def test_github_format_emits_error_annotations(dirty_tree, capsys):
    assert _run([str(dirty_tree), "--format", "github"]) == 1
    lines = capsys.readouterr().out.splitlines()
    assert any(line.startswith("::error file=") for line in lines)
    assert lines[-1].startswith("::notice")


# -- baseline workflow --------------------------------------------------------


def test_baseline_roundtrip_silences_existing_findings(dirty_tree, capsys):
    baseline = dirty_tree / "baseline.json"
    assert _run([str(dirty_tree), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    # with the baseline the same tree is green ...
    assert _run([str(dirty_tree), "--baseline", str(baseline)]) == 0
    # ... and a *new* violation still fails the gate
    extra = dirty_tree / "src" / "repro" / "sim" / "extra.py"
    extra.write_text("import time\nnew_stamp = time.time()\n", encoding="utf-8")
    capsys.readouterr()
    assert _run([str(dirty_tree), "--baseline", str(baseline)]) == 1
    assert "extra.py" in capsys.readouterr().out


def test_malformed_baseline_exits_2(dirty_tree, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("[]", encoding="utf-8")
    assert _run([str(dirty_tree), "--baseline", str(bad)]) == 2
    with pytest.raises(BaselineError):
        load_baseline(str(bad))


# -- discovery ----------------------------------------------------------------


def test_fixture_directories_are_excluded_by_default(tmp_path):
    nested = tmp_path / "tests" / "analysis" / "fixtures"
    nested.mkdir(parents=True)
    (nested / "bad.py").write_text("import time\nt = time.time()\n")
    (tmp_path / "tests" / "ok.py").write_text("x = 1\n")
    files = iter_python_files([str(tmp_path)])
    assert [f.name for f in files] == ["ok.py"]


def test_discovery_is_sorted_and_deduplicated(tmp_path):
    for name in ("b.py", "a.py", "c.py"):
        (tmp_path / name).write_text("x = 1\n")
    files = iter_python_files([str(tmp_path), str(tmp_path / "a.py")])
    assert [f.name for f in files] == ["a.py", "b.py", "c.py"]


def test_extra_exclude_dirname(dirty_tree):
    findings, scanned = analyze_paths([str(dirty_tree)], excluded_dirs=("sim",))
    assert findings == [] and scanned == 0
