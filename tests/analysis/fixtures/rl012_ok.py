"""RL012 clean twin: kernels are read; per-episode state is mutated."""

from repro.sim.kernel import EpisodeKernel, EpisodeState


def replay(kernel: EpisodeKernel, state: EpisodeState) -> float:
    state.clock = 0.0  # EpisodeState is the mutable half — fine
    state.steps += 1
    return kernel.horizon


class Runner:
    def __init__(self, kernel: "EpisodeKernel") -> None:
        self._kernel = kernel

    def horizon(self) -> float:
        return self._kernel.horizon  # reads are fine
