"""RL007 fixture: per-call ready x idle rebuilds (must flag twice)."""


def enumerate_actions(ctx):
    return [
        (ac.id, vm.id) for ac in ctx.ready_activations for vm in ctx.idle_vms
    ]


def enumerate_actions_aliased(ctx):
    ready = ctx.ready_activations
    idle = ctx.idle_vms
    return [(ac.id, vm.id) for ac in ready for vm in idle]
