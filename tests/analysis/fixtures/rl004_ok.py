"""RL004 fixture: module-level picklable task functions (must pass)."""

from repro.runner import ParallelRunner, Task


def work(payload, seed):
    return payload * seed


def run_campaign(payloads):
    runner = ParallelRunner(workers=4, run_id="fixture", seed=0)
    tasks = [Task(key=i, fn=work, payload=p) for i, p in enumerate(payloads)]
    values = runner.map_values(work, payloads, keys=None)
    return runner.run(tasks), values
