"""RL015 fixture: per-step Python loops over trace step arrays (flagged)."""


def per_step_column(trace):
    total = 0.0
    for r in trace.reward:  # clean: "reward" is too generic to track
        total += r
    for v in trace.act_v:  # flagged: iterates a step column
        total += v
    return total


def per_step_range_n_steps(trace):
    out = []
    for i in range(trace.n_steps):  # flagged: range over the step count
        out.append(trace.te[i] - trace.tf[i])
    return out


def per_step_aliased_count(trace):
    pairs_idx = trace.pairs_idx
    n = int(pairs_idx.shape[0])
    acc = 0
    for i in range(n):  # flagged: count derived from a step column
        acc += pairs_idx[i]
    return acc


def per_step_len_alias(trace):
    col = trace.act_a
    return [col[i] for i in range(len(col))]  # flagged: len() of a column


def per_step_materialized(trace):
    return [step.action for step in trace.steps]  # flagged: trace.steps


def per_step_zip(trace):
    return [
        te - tf
        for te, tf in zip(trace.te, trace.tf)  # flagged: zip over columns
    ]
