"""RL001 fixture: global random state (must flag)."""

import random

import numpy as np

random.seed(42)  # module-level global seed


def pick(items):
    np.random.seed(7)
    idx = np.random.randint(0, len(items))
    return items[idx], random.random()
