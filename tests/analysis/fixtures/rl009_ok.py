"""RL009 clean twin: canonical JSON in serializers, no file writes."""

import json


class Record:
    def __init__(self, payload):
        self.payload = payload

    def to_json(self):
        return json.dumps(self.payload, sort_keys=True)

    def render(self):
        # not a serializer name and this module never writes files, so
        # ephemeral (debug/log) output may skip sort_keys
        return json.dumps(self.payload)
