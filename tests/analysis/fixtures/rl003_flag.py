"""RL003 fixture: unordered set iteration in sim code (must flag)."""


def dispatch_order(ready_ids, finished):
    pending = set(ready_ids) - set(finished)
    order = []
    for activation_id in pending:
        order.append(activation_id)
    names = [str(x) for x in {1, 2, 3}]
    return order, names
