"""RL014 fixture: per-lane Python loops over batch axes (flagged)."""

import numpy as np


def per_lane_makespans(view):
    out = []
    for lane in view.lanes:  # flagged: iterates the batch axis
        out.append(lane.makespan)
    return out


def per_lane_indexed(view):
    totals = np.zeros(view.batch)
    for i, lane in enumerate(view.lanes):  # flagged: enumerate over lanes
        totals[i] = lane.steps
    return totals


def per_lane_range(view):
    acc = 0.0
    for b in range(view.batch):  # flagged: range over the batch width
        acc += view.makespan[b]
    return acc


def per_lane_len_range(view):
    lanes = view.lanes
    return [view.steps[i] for i in range(len(lanes))]  # flagged: via alias


def per_lane_alias(view):
    lanes = view.lanes
    return sum(lane.now for lane in lanes)  # flagged: aliased lanes
