"""RL015 fixture twin: vectorized column reads and unrelated loops (clean)."""

import numpy as np


def trace_summary(trace):
    # the whole point: whole-column numpy expressions, no step loop
    return {
        "total_overhead": float((trace.tf - trace.te).sum()),
        "explored_steps": int(np.count_nonzero(trace.explored)),
        "max_vm": int(trace.act_v.max()) if trace.n_steps else -1,
    }


def per_vm_scan(vms):
    # looping other (small, non-step) axes is fine
    return [vm for vm in vms if vm.idle]


def plain_range(n):
    return [i * i for i in range(n)]


def local_names_are_not_columns(items):
    # locals merely *named* like columns are not step-array reads
    act_v = [item.value for item in items]
    return [v + 1 for v in act_v]


def sanctioned_sequential_scan(trace, rng_random):
    # order-sensitive draws may opt out explicitly, with a reason
    draws = []
    for _ in range(trace.n_steps):  # reprolint: disable=RL015  (draws are sequential)
        draws.append(rng_random())
    return draws
