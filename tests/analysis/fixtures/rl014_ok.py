"""RL014 fixture twin: vectorized batch reads and unrelated loops (clean)."""

import numpy as np


def batch_summary(view):
    # the whole point: one vectorized expression over the (B,) arrays
    return {
        "mean_makespan": float(view.makespan.mean()),
        "total_steps": int(view.steps.sum()),
        "stalled": int(np.count_nonzero(view.ready)),
    }


def per_vm_scan(vms):
    # looping other (small, non-batch) axes is fine
    return [vm for vm in vms if not vm.migrating]


def plain_range(n):
    return [i * i for i in range(n)]


def local_lanes_list(items):
    # a local merely *named* lanes is not a batch-axis read
    lanes = [item for item in items if item.active]
    return [lane.name for lane in lanes]
