"""RL013 clean twin: reductions iterate sorted keys (or are order-free)."""


def total_capacity(caps):
    return sum(caps[k] for k in sorted(caps))


def busy_seconds(times):
    return sum(times[k] for k in sorted(times))


def slowest(times):
    return max(times.values())  # plain max of floats is order-insensitive
