"""RL001 fixture: seeded local generators only (must pass)."""

import random

import numpy as np

from repro.util.rng import RngService, derive_seed


def pick(items, seed):
    rng = np.random.default_rng(derive_seed(seed, "pick"))
    service = RngService(seed)
    local = random.Random(seed)
    return items[int(rng.integers(0, len(items)))], service, local
