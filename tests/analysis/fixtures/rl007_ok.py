"""RL007 fixture: cached/streamed uses of the views (must pass)."""


def enumerate_actions(ctx):
    # the cached, version-invalidated cross product
    return ctx.action_pairs


def count_pairs(ctx):
    # generator expressions stream; they do not materialize the product
    return sum(1 for ac in ctx.ready_activations for vm in ctx.idle_vms)


def single_views(ctx):
    # single-generator comprehensions over one view are fine
    ready_ids = [ac.id for ac in ctx.ready_activations]
    idle_ids = [vm.id for vm in ctx.idle_vms]
    return ready_ids, idle_ids


def unrelated_product(xs, ys):
    return [(x, y) for x in xs for y in ys]
