"""RL006 fixture: sorted filesystem listings (must pass)."""

import glob
import os
from pathlib import Path


def load_workflow_inputs(directory):
    entries = sorted(os.listdir(directory))
    daxes = sorted(glob.glob(str(Path(directory) / "*.dax")))
    children = sorted(Path(directory).iterdir())
    return entries, daxes, children
