"""RL011 clean twin: unique ascending priorities with a matching table."""

from enum import IntEnum


class GoodEventType(IntEnum):
    VM_READY = 0
    TASK_DONE = 1
    RETRY = 2


PRIORITY_TABLE = (
    ("VM_READY", 0),
    ("TASK_DONE", 1),
    ("RETRY", 2),
)
