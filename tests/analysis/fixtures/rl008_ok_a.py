"""RL008 clean twin, module A: module-prefixed stream names only."""

from repro.util.rng import RngService


def make_jitter(seed):
    service = RngService(seed)
    # a repeated name *within* one module is fine; collisions are cross-module
    return service.stream("service-jitter"), service.stream("service-jitter")
