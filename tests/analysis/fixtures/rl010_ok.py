"""RL010 clean twin: every generator is grounded in a derived seed."""

import numpy as np

from repro.util.rng import derive_seed


def make_gen(seed):
    return np.random.default_rng(derive_seed(seed, "fixture-gen"))


def shuffle(items, seed):
    rng = np.random.default_rng(seed)
    rng.shuffle(items)
    return items


def sample(seed, k):
    rng = np.random.default_rng(derive_seed(seed, "fixture-sample"))
    return rng.integers(0, k)
