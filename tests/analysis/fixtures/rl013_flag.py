"""RL013 fixture: float reductions over unordered collections (3 flags)."""


def total_capacity(caps):
    return sum({caps[k] for k in caps})  # flag (error): set expression


def busy_seconds(times):
    return sum(times.values())  # flag (warning): dict insertion order


def slowest(times):
    # flag (warning): key= makes ties resolve by iteration order
    return max(times.values(), key=lambda t: round(t, 3))
