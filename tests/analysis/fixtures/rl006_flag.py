"""RL006 fixture: unsorted filesystem listings (must flag)."""

import glob
import os
from pathlib import Path


def load_workflow_inputs(directory):
    entries = os.listdir(directory)
    daxes = glob.glob(str(Path(directory) / "*.dax"))
    children = list(Path(directory).iterdir())
    return entries, daxes, children
