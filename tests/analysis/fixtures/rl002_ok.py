"""RL002 fixture: injected clock + perf_counter duration (must pass)."""

import time


def stamp_record(record, clock):
    record["created_at"] = clock()  # injected clock callable
    started = time.perf_counter()  # duration metric, not simulated state
    record["elapsed"] = time.perf_counter() - started
    return record
