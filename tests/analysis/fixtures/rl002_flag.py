"""RL002 fixture: wall-clock reads in simulation code (must flag)."""

import time
from datetime import datetime


def stamp_record(record):
    record["created_at"] = time.time()
    record["label"] = datetime.now().isoformat()
    record["mono"] = time.monotonic()
    return record
