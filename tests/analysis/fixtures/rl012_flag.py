"""RL012 fixture: attribute mutations on EpisodeKernel objects (3 flags)."""

from repro.sim.kernel import EpisodeKernel


def warm_start(kernel: EpisodeKernel) -> None:
    kernel.cache = {}  # flag: plain assignment
    kernel.n_runs += 1  # flag: augmented assignment


class Runner:
    def __init__(self, kernel: "EpisodeKernel") -> None:
        self._kernel = kernel

    def reset(self) -> None:
        self._kernel.step = 0  # flag: aliased kernel, mutated via self
