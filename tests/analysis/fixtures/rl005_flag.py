"""RL005 fixture: simulated clock moved backwards (must flag)."""


class ReplaySimulator:
    def __init__(self):
        self._now = 0.0
        self.now = 0.0

    def rewind(self):
        self._now -= 1.5

    def adjust(self):
        self.now = self.now - 10

    def reset_negative(self):
        self._now = -1.0
