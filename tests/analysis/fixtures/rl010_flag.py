"""RL010 fixture: broken seed plumbing around RNG construction (3 flags)."""

import numpy as np


def make_gen():
    return np.random.default_rng()  # flag: OS-entropy seeding


def shuffle(items, salt):
    rng = np.random.default_rng(salt)  # flag: 'salt' is not a seed expression
    rng.shuffle(items)
    return items


def sample(seed, k):
    # flag: accepts 'seed' but constructs the generator from a constant
    rng = np.random.default_rng(12345)
    return rng.integers(0, k)
