"""RL005 fixture: monotone simulated clock (must pass)."""


class ReplaySimulator:
    def __init__(self):
        self._now = 0.0

    def advance(self, event_time):
        self._now = max(self._now, event_time)

    def step(self, dt):
        self._now += dt
