"""RL011 fixture: duplicate/out-of-order priorities, stale table (3 flags)."""

from enum import IntEnum


class BadEventType(IntEnum):
    VM_READY = 0
    TASK_DONE = 2
    TASK_FAIL = 2  # flag: reuses priority 2
    RETRY = 1  # flag: defined out of priority order


# flag: does not match the enum (names, values, order)
PRIORITY_TABLE = (
    ("VM_READY", 0),
)
