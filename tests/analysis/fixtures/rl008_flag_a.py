"""RL008 fixture, module A: derives the stream name also used by module B."""

from repro.util.rng import RngService


def make_jitter(seed):
    service = RngService(seed)
    # "shared-jitter" collides with the derive_seed call in module B
    return service.stream("shared-jitter"), service.stream("service-local")
