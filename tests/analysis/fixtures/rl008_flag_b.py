"""RL008 fixture, module B: derives module A's stream name directly."""

from repro.util.rng import derive_seed


def jitter_seed(root_seed):
    return derive_seed(root_seed, "shared-jitter")
