"""RL003 fixture: sorted set iteration (must pass)."""


def dispatch_order(ready_ids, finished):
    pending = set(ready_ids) - set(finished)
    order = []
    for activation_id in sorted(pending):
        order.append(activation_id)
    names = [str(x) for x in sorted({1, 2, 3})]
    return order, names
