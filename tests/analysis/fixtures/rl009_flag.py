"""RL009 fixture: non-canonical json.dumps in artifact-writing code (2 flags)."""

import json


class Record:
    def __init__(self, payload):
        self.payload = payload

    def to_json(self):
        return json.dumps(self.payload)  # flag: serializer without sort_keys

    def to_debug_string(self):
        # canonical, so clean even though this module writes files
        return json.dumps(self.payload, sort_keys=True)


def save_state(path, data):
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(data))  # flag: file-writing module
