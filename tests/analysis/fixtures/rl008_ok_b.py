"""RL008 clean twin, module B: its own stream-name prefix."""

from repro.util.rng import derive_seed


def jitter_seed(root_seed):
    return derive_seed(root_seed, "rl-jitter")
