"""RL004 fixture: unpicklable task functions (must flag)."""

from repro.runner import ParallelRunner, Task


def run_campaign(payloads):
    runner = ParallelRunner(workers=4, run_id="fixture", seed=0)

    def local_work(payload, seed):  # nested: cannot cross process boundary
        return payload * seed

    tasks = [Task(key=i, fn=lambda p, s: p + s, payload=p) for i, p in enumerate(payloads)]
    tasks.append(Task(key="nested", fn=local_work, payload=1))
    values = runner.map_values(lambda p, s: p, payloads, keys=None)
    return runner.run(tasks), values
