"""Unit tests for the parallel experiment runner (repro.runner)."""

import os

import pytest

from repro.runner import (
    ParallelRunner,
    RunnerError,
    Task,
    canonical_key,
    resolve_workers,
    task_seed,
)
from repro.util.validate import ValidationError


def echo(payload, seed):
    """Module-level task fn (picklable) returning its inputs."""
    return (payload, seed)


def failing(payload, seed):
    if payload == "boom":
        raise ValueError("intentional failure")
    return payload


def slow_square(payload, seed):
    return payload * payload


def tasks_of(n, fn=echo):
    return [Task(key=("t", i), fn=fn, payload=i) for i in range(n)]


class TestCanonicalKey:
    def test_scalars_and_tuples(self):
        assert canonical_key(("cell", 0.1, 2)) == "(cell,0.1,2)"
        assert canonical_key("x") == "x"
        assert canonical_key(3) == "3"
        assert canonical_key(None) == "None"

    def test_nested(self):
        assert canonical_key((1, (2, 3))) == "(1,(2,3))"

    def test_floats_use_repr(self):
        # 0.1 + 0.2 != 0.3 — distinct floats must get distinct labels
        assert canonical_key(0.1 + 0.2) != canonical_key(0.3)

    def test_rejects_unhashable_types(self):
        with pytest.raises(ValidationError):
            canonical_key({"a": 1})


class TestTaskSeed:
    def test_stable(self):
        assert task_seed(7, "run", ("a", 1)) == task_seed(7, "run", ("a", 1))

    def test_varies_with_every_component(self):
        base = task_seed(7, "run", ("a", 1))
        assert task_seed(8, "run", ("a", 1)) != base
        assert task_seed(7, "other", ("a", 1)) != base
        assert task_seed(7, "run", ("a", 2)) != base

    def test_runner_seed_for_matches(self):
        runner = ParallelRunner(workers=1, run_id="r", seed=5)
        assert runner.seed_for(("k", 3)) == task_seed(5, "r", ("k", 3))


class TestResolveWorkers:
    def test_explicit(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(1) == 1

    def test_zero_means_all_cores(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)
        assert resolve_workers(-1) == (os.cpu_count() or 1)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert resolve_workers(None) == 6


class TestSerialRunner:
    def test_ordered_results(self):
        runner = ParallelRunner(workers=1, run_id="s", seed=0)
        results = runner.run(tasks_of(8))
        assert [r.index for r in results] == list(range(8))
        assert [r.value[0] for r in results] == list(range(8))
        assert all(r.ok for r in results)
        assert all(r.duration >= 0.0 for r in results)

    def test_derived_seeds_recorded(self):
        runner = ParallelRunner(workers=1, run_id="s", seed=0)
        results = runner.run(tasks_of(4))
        for r in results:
            assert r.seed == runner.seed_for(r.key)
        assert len({r.seed for r in results}) == 4  # distinct per key

    def test_explicit_seed_wins(self):
        runner = ParallelRunner(workers=1, run_id="s", seed=0)
        [r] = runner.run([Task(key="k", fn=echo, payload=1, seed=42)])
        assert r.seed == 42
        assert r.value == (1, 42)

    def test_duplicate_keys_rejected(self):
        runner = ParallelRunner(workers=1)
        with pytest.raises(ValidationError, match="duplicate"):
            runner.run([Task(key="k", fn=echo), Task(key="k", fn=echo)])

    def test_empty_batch(self):
        assert ParallelRunner(workers=1).run([]) == []

    def test_failure_capture(self):
        runner = ParallelRunner(workers=1)
        tasks = [
            Task(key="ok", fn=failing, payload="fine"),
            Task(key="bad", fn=failing, payload="boom"),
        ]
        with pytest.raises(RunnerError, match="1 task"):
            runner.run(tasks)
        results = runner.run(tasks, raise_on_error=False)
        assert results[0].ok and results[0].value == "fine"
        assert not results[1].ok
        assert "intentional failure" in results[1].error

    def test_progress_callback(self):
        calls = []
        runner = ParallelRunner(
            workers=1, progress=lambda d, t, r: calls.append((d, t, r.key))
        )
        runner.run(tasks_of(5))
        assert [c[0] for c in calls] == [1, 2, 3, 4, 5]
        assert all(c[1] == 5 for c in calls)

    def test_map_values(self):
        runner = ParallelRunner(workers=1)
        assert runner.map_values(slow_square, [1, 2, 3]) == [1, 4, 9]


class TestPoolRunner:
    def test_matches_serial_bitwise(self):
        tasks = tasks_of(12)
        serial = ParallelRunner(workers=1, run_id="p", seed=3).run(tasks)
        pooled = ParallelRunner(workers=3, run_id="p", seed=3).run(tasks)
        assert [(r.key, r.index, r.value, r.seed) for r in serial] == [
            (r.key, r.index, r.value, r.seed) for r in pooled
        ]

    def test_chunked_imap_preserves_order(self):
        tasks = tasks_of(11)
        runner = ParallelRunner(workers=2, chunk_size=3, run_id="p", seed=0)
        streamed = list(runner.imap(tasks))
        assert [r.index for r in streamed] == list(range(11))

    def test_pool_failure_capture(self):
        runner = ParallelRunner(workers=2)
        tasks = [Task(key=i, fn=failing, payload=i) for i in range(3)]
        tasks.append(Task(key="bad", fn=failing, payload="boom"))
        results = runner.run(tasks, raise_on_error=False)
        assert [r.ok for r in results] == [True, True, True, False]
        assert "ValueError" in results[-1].error

    def test_pool_progress_counts(self):
        calls = []
        runner = ParallelRunner(
            workers=2, progress=lambda d, t, r: calls.append(d)
        )
        runner.run(tasks_of(6))
        assert sorted(calls) == [1, 2, 3, 4, 5, 6]

    def test_worker_pids_differ_from_parent(self):
        runner = ParallelRunner(workers=2)
        results = runner.run(tasks_of(4))
        assert any(r.worker != os.getpid() for r in results)

    def test_chunk_size_validation(self):
        with pytest.raises(ValidationError):
            ParallelRunner(workers=1, chunk_size=0)


def kernel_probe(payload, seed):
    """Build-or-hit a worker-cached kernel; report this process's view.

    ``payload`` is the kernel fingerprint, so tests can use distinct
    cache keys and not see each other's builds.
    """
    from repro.runner.parallel import kernel_cache_stats, shared_kernel

    shared_kernel(payload, object)
    stats = kernel_cache_stats()
    return (os.getpid(), stats["builds"], stats["hits"])


class TestPersistentPool:
    def test_kernel_cache_survives_across_runs(self):
        """The satellite contract: one worker, one build, then hits.

        With ``persistent=True`` even ``workers=1`` runs through a real
        one-process pool, and that process — with its module-global
        kernel cache — survives between ``run()`` calls.
        """
        fp = "persist-probe-survive"
        with ParallelRunner(
            workers=1, run_id="pp", seed=0, persistent=True
        ) as runner:
            first = runner.run(
                [Task(key="k0", fn=kernel_probe, payload=fp)]
            )[0].value
            second = runner.run(
                [Task(key="k1", fn=kernel_probe, payload=fp)]
            )[0].value
        pid1, builds1, hits1 = first
        pid2, builds2, hits2 = second
        assert pid1 == pid2, "persistent pool recycled its worker"
        assert pid1 != os.getpid(), "persistent workers=1 must be a pool"
        assert builds2 == builds1, "kernel rebuilt despite the live cache"
        assert hits2 == hits1 + 1

    def test_ephemeral_pool_forgets_between_runs(self):
        """Without persistence each run's fresh worker rebuilds.

        (``workers=1`` without persistence is the in-process serial
        path, where the parent's cache trivially survives — the
        contrast needs a real throwaway pool.)
        """
        fp = "persist-probe-forget"
        runner = ParallelRunner(workers=2, run_id="pe", seed=0)
        first = runner.run(
            [Task(key="k0", fn=kernel_probe, payload=fp)]
        )[0].value
        second = runner.run(
            [Task(key="k1", fn=kernel_probe, payload=fp)]
        )[0].value
        # both runs start workers from the same parent image: identical
        # counters, no accumulated hits (contrast with the persistent
        # test above, where the second run hits the first run's build)
        assert first[1:] == second[1:]

    def test_matches_ephemeral_bitwise(self):
        tasks = tasks_of(8)
        with ParallelRunner(
            workers=2, run_id="q", seed=5, persistent=True
        ) as persistent_runner:
            persistent = persistent_runner.run(tasks)
        ephemeral = ParallelRunner(workers=2, run_id="q", seed=5).run(tasks)
        assert [(r.key, r.index, r.value, r.seed) for r in persistent] == [
            (r.key, r.index, r.value, r.seed) for r in ephemeral
        ]

    def test_context_manager_shuts_down(self):
        with ParallelRunner(workers=2, persistent=True) as runner:
            runner.run(tasks_of(3))
            assert runner._executor is not None
        assert runner._executor is None

    def test_reusable_after_close(self):
        runner = ParallelRunner(workers=2, run_id="rc", seed=1,
                                persistent=True)
        a = runner.run(tasks_of(3))
        runner.close()
        runner.close()  # idempotent
        b = runner.run(tasks_of(3))  # lazily restarts a fresh pool
        runner.close()
        assert [(r.key, r.value, r.seed) for r in a] == [
            (r.key, r.value, r.seed) for r in b
        ]

    def test_repr_flags_persistence(self):
        assert "persistent=True" in repr(
            ParallelRunner(workers=2, persistent=True)
        )
        assert "persistent" not in repr(ParallelRunner(workers=2))
