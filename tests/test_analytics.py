"""Tests for repro.scicumulus.analytics — provenance analytics."""

import pytest

from repro.core import ReassignParams
from repro.schedulers import HeftScheduler
from repro.scicumulus import ProvenanceStore, SciCumulusRL
from repro.scicumulus.analytics import (
    activity_statistics,
    makespan_trend,
    render_vm_report,
    scheduler_comparison,
    vm_performance_report,
)
from repro.util.validate import ValidationError
from repro.workflows import montage


@pytest.fixture(scope="module")
def populated_store():
    """A provenance store with HEFT + two ReASSIgN runs recorded."""
    wf = montage(25, seed=3)
    store = ProvenanceStore()
    swfms = SciCumulusRL(provenance=store, seed=1)
    spec = {"t2.micro": 2, "t2.2xlarge": 1}
    swfms.run_workflow(wf, spec, HeftScheduler())
    params = ReassignParams(episodes=3)
    swfms.run_workflow(wf, spec, "reassign", params)
    swfms.run_workflow(wf, spec, "reassign", params)
    return store, wf.name


class TestVmReport:
    def test_covers_used_vms(self, populated_store):
        store, name = populated_store
        reports = vm_performance_report(store, name)
        assert reports
        assert all(r.n_activations > 0 for r in reports)
        assert sum(r.n_activations for r in reports) == 3 * 25

    def test_index_formula(self, populated_store):
        store, name = populated_store
        for r in vm_performance_report(store, name, mu=0.5):
            assert r.performance_index == pytest.approx(
                0.5 * r.mean_execution + 0.5 * r.mean_queue
            )

    def test_mu_one_is_pure_execution(self, populated_store):
        store, name = populated_store
        for r in vm_performance_report(store, name, mu=1.0):
            assert r.performance_index == pytest.approx(r.mean_execution)

    def test_mu_validated(self, populated_store):
        store, name = populated_store
        with pytest.raises(ValidationError):
            vm_performance_report(store, name, mu=1.5)

    def test_render(self, populated_store):
        store, name = populated_store
        text = render_vm_report(vm_performance_report(store, name))
        assert "per-VM performance history" in text

    def test_empty_store(self):
        assert vm_performance_report(ProvenanceStore()) == []


class TestActivityStats:
    def test_montage_activities_present(self, populated_store):
        store, name = populated_store
        stats = activity_statistics(store, name)
        assert "mProjectPP" in stats and "mAdd" in stats
        count, mean, std = stats["mAdd"]
        assert count == 3  # one mAdd per execution
        assert mean > 0 and std >= 0


class TestSchedulerComparison:
    def test_groups_by_scheduler(self, populated_store):
        store, name = populated_store
        comparison = scheduler_comparison(store, name)
        assert "HEFT" in comparison
        rl_keys = [k for k in comparison if k.startswith("ReASSIgN")]
        assert rl_keys
        runs, mean_mk, mean_cost = comparison["HEFT"]
        assert runs == 1 and mean_mk > 0 and mean_cost > 0


class TestTrend:
    def test_reassign_trend_length(self, populated_store):
        store, name = populated_store
        trend = makespan_trend(store, name)
        assert len(trend) == 2  # two ReASSIgN executions recorded
        assert all(m > 0 for m in trend)

    def test_unknown_workflow_empty(self, populated_store):
        store, _ = populated_store
        assert makespan_trend(store, "nope") == []
