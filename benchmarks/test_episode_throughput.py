"""Episode-throughput benchmark — facade-per-episode vs kernel reuse.

Times the ReASSIgN learning hot path on Montage-50 two ways with the
same scheduler configuration and the same per-episode seeds:

- **facade path**: a fresh :class:`~repro.sim.simulator.WorkflowSimulator`
  per episode, re-deriving every piece of static information (DAG copy,
  index maps, fresh estimate caches) each time — the shape of the
  pre-kernel learning loop;
- **kernel path**: one :class:`~repro.sim.kernel.EpisodeKernel` built
  up front, each episode paying only the O(n) ``EpisodeState.reset``.

The determinism check rides along: both paths must produce bit-identical
per-episode makespans before any throughput number counts.  Results go
to ``results/episode_throughput.md`` (prose) and
``results/BENCH_episode_throughput.json`` (machine-readable).

The live facade-vs-kernel ratio *understates* the refactor's gain: the
facade is itself built on the kernel, so it already enjoys within-episode
estimate memoization and cached context views.  The full improvement was
measured A/B against the pre-refactor engine (commit ``01b95de``) on the
same workload, seeds and host — best of 3, bit-identical makespans:

======================  ===========  ========
engine                  episodes/s   speedup
======================  ===========  ========
pre-refactor simulator      129.1      1.00x
facade path (this tree)     256.2      1.98x
kernel path (this tree)     313.8      2.43x
======================  ===========  ========

That frozen reference is recorded in both artifacts; the live assertion
only covers what this tree can measure (kernel reuse beats per-episode
rebuild), with a modest floor so CI noise cannot flake it.
"""

import json
import os
import time

import pytest

from repro.core.reassign import ReassignParams, ReassignScheduler
from repro.experiments import default_episodes
from repro.experiments.environments import fleet_for
from repro.sim.fluctuation import BurstThrottleFluctuation
from repro.sim.kernel import EpisodeKernel
from repro.sim.simulator import WorkflowSimulator
from repro.util.rng import RngService
from repro.workflows.montage import montage

from conftest import host_provenance, save_artifact

_FLUCTUATION = dict(credit_seconds=60.0, throttle_factor=2.0)

#: A/B measurement against the pre-refactor engine (see module docstring).
_PRE_REFACTOR_REFERENCE = {
    "commit": "01b95de",
    "episodes": 30,
    "pre_refactor_eps_per_sec": 129.1,
    "facade_eps_per_sec": 256.2,
    "kernel_eps_per_sec": 313.8,
    "kernel_speedup_vs_pre_refactor": 2.43,
}


def _episode_seeds(seed, n):
    rng = RngService(seed)
    return [rng.spawn_seed(f"episode:{i}") for i in range(n)]


def _scheduler(seed):
    params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1)
    return ReassignScheduler(params, seed=seed, learning=True)


def _facade_path(wf, fleet, seeds):
    """One simulator construction per episode (the historical loop)."""
    scheduler = _scheduler(1)
    makespans = []
    started = time.perf_counter()
    for seed in seeds:
        sim = WorkflowSimulator(
            wf,
            fleet,
            scheduler,
            fluctuation=BurstThrottleFluctuation(**_FLUCTUATION),
            seed=seed,
        )
        makespans.append(sim.run().makespan)
    return makespans, time.perf_counter() - started


def _kernel_path(wf, fleet, seeds):
    """One kernel for all episodes; per-episode work is the state reset."""
    scheduler = _scheduler(1)
    kernel = EpisodeKernel(
        wf, fleet, fluctuation=BurstThrottleFluctuation(**_FLUCTUATION)
    )
    makespans = []
    started = time.perf_counter()
    for seed in seeds:
        makespans.append(kernel.run_episode(scheduler, seed).makespan)
    return makespans, time.perf_counter() - started


def _render_note(episodes, facade_s, kernel_s):
    facade_eps = episodes / facade_s if facade_s > 0 else float("inf")
    kernel_eps = episodes / kernel_s if kernel_s > 0 else float("inf")
    ref = _PRE_REFACTOR_REFERENCE
    return "\n".join([
        "# Episode throughput (kernel reuse)",
        "",
        f"- host cores: {os.cpu_count() or 1}",
        "- workflow: Montage-50, 16-vCPU Table-I fleet",
        f"- episodes per path: {episodes}",
        f"- facade path (simulator per episode): {facade_s:.3f} s "
        f"({facade_eps:.1f} eps/s)",
        f"- kernel path (one kernel, state reset): {kernel_s:.3f} s "
        f"({kernel_eps:.1f} eps/s)",
        f"- live speedup (facade -> kernel): {facade_s / kernel_s:.2f}x",
        "",
        "Both paths ran the same ReASSIgN scheduler over the same episode",
        "seeds and were verified bit-identical on per-episode makespans",
        "before timing counted.  The live ratio understates the refactor:",
        "the facade is built on the kernel, so it already memoizes",
        "estimates within each episode.  Measured A/B against the",
        f"pre-refactor engine (commit {ref['commit']}, same workload/seeds,",
        "best of 3, bit-identical makespans):",
        "",
        f"- pre-refactor: {ref['pre_refactor_eps_per_sec']:.1f} eps/s",
        f"- kernel path:  {ref['kernel_eps_per_sec']:.1f} eps/s"
        f" -> {ref['kernel_speedup_vs_pre_refactor']:.2f}x",
    ])


def _bench_json(episodes, facade_s, kernel_s):
    return json.dumps(
        {
            "benchmark": "episode_throughput",
            "workflow": "montage-50",
            "vcpus": 16,
            "episodes": episodes,
            **host_provenance(),
            "facade_seconds": facade_s,
            "facade_eps_per_sec": episodes / facade_s,
            "kernel_seconds": kernel_s,
            "kernel_eps_per_sec": episodes / kernel_s,
            "live_speedup": facade_s / kernel_s,
            "pre_refactor_reference": _PRE_REFACTOR_REFERENCE,
        },
        indent=1,
        sort_keys=True,
    )


def _run_and_record(results_dir, episodes):
    wf = montage(50, seed=1)
    fleet = fleet_for(16)
    seeds = _episode_seeds(1, episodes)
    facade_mk, facade_s = _facade_path(wf, fleet, seeds)
    kernel_mk, kernel_s = _kernel_path(wf, fleet, seeds)
    assert facade_mk == kernel_mk, (
        "facade and kernel paths diverged — throughput numbers void"
    )
    save_artifact(
        results_dir,
        "episode_throughput.md",
        _render_note(episodes, facade_s, kernel_s),
    )
    save_artifact(
        results_dir,
        "BENCH_episode_throughput.json",
        _bench_json(episodes, facade_s, kernel_s),
    )
    return facade_s, kernel_s


@pytest.mark.fast
def test_episode_throughput_fast(results_dir):
    """CI-sized benchmark: kernel reuse must beat per-episode rebuild."""
    episodes = default_episodes(10)
    facade_s, kernel_s = _run_and_record(results_dir, episodes)
    assert kernel_s < facade_s, (
        f"kernel reuse slower than per-episode rebuild: "
        f"{kernel_s:.3f}s vs {facade_s:.3f}s"
    )


def test_episode_throughput_full(results_dir):
    """Full-length benchmark with a firmer amortization floor."""
    episodes = default_episodes(100)
    facade_s, kernel_s = _run_and_record(results_dir, episodes)
    assert facade_s / kernel_s >= 1.1, (
        f"expected >=1.1x from kernel reuse over per-episode rebuild: "
        f"facade {facade_s:.3f}s, kernel {kernel_s:.3f}s"
    )
