"""Parallel-runner speedup benchmark — serial vs multi-process sweeps.

Times the paper's (α, γ, ε) sweep with ``workers=1`` and ``workers=4``
and writes the comparison to ``results/runner_speedup.md``.  The
determinism check rides along: both runs must produce bit-identical
records regardless of the measured speedup.

Sweep cells are embarrassingly parallel (independent learning runs), so
on a host with >= 4 physical cores the 4-worker sweep should finish in
well under half the serial time.  On fewer cores the pool only adds
process overhead — the speedup assertion is therefore gated on
``os.cpu_count()``; the artifact always records the honest numbers and
the core count they were measured on.

The ``fast`` variant (reduced grid, Montage-25) runs in CI; the full
81-cell benchmark runs by default with the rest of the benchmark suite.
"""

import os
import time

import pytest

from repro.experiments import default_episodes, run_paper_sweep
from repro.workflows.montage import montage

from conftest import save_artifact


def _fingerprints(sweep):
    return {
        vcpus: [
            (r.alpha, r.gamma, r.epsilon, r.simulated_makespan,
             r.result.plan.to_json())
            for r in recs
        ]
        for vcpus, recs in sweep.records.items()
    }


def _timed_sweep(workers, **kwargs):
    started = time.perf_counter()
    sweep = run_paper_sweep(workers=workers, **kwargs)
    return sweep, time.perf_counter() - started


def _render_note(title, serial_s, pooled_s, n_cells, episodes):
    cores = os.cpu_count() or 1
    speedup = serial_s / pooled_s if pooled_s > 0 else float("inf")
    return "\n".join([
        f"# {title}",
        "",
        f"- host cores: {cores}",
        f"- sweep cells: {n_cells} (episodes per cell: {episodes})",
        f"- serial (workers=1): {serial_s:.2f} s",
        f"- pooled (workers=4): {pooled_s:.2f} s",
        f"- speedup: {speedup:.2f}x",
        "",
        "Cells are independent learning runs, so the expected speedup at",
        "4 workers on a >=4-core host is >=2x (pool + pickling overhead",
        "keeps it below the ideal 4x for short cells).  On hosts with",
        "fewer cores the process pool cannot beat serial execution and",
        "this artifact records that honestly; rerun",
        "`python -m pytest benchmarks/test_runner_speedup.py` on a",
        "multi-core machine to reproduce the scaling number.",
        "Records were verified bit-identical between the two runs.",
    ])


@pytest.mark.fast
def test_reduced_sweep_speedup(results_dir):
    """CI-sized benchmark: 8 cells on Montage-25, determinism asserted."""
    episodes = default_episodes(5)
    kwargs = dict(
        workflow=montage(25, seed=1),
        vcpu_fleets=(16,),
        grid=(0.1, 1.0),
        episodes=episodes,
        seed=1,
        timing="simulated",
    )
    serial, serial_s = _timed_sweep(1, **kwargs)
    pooled, pooled_s = _timed_sweep(4, **kwargs)
    assert _fingerprints(serial) == _fingerprints(pooled)
    save_artifact(
        results_dir,
        "runner_speedup_fast.md",
        _render_note("Runner speedup (reduced 8-cell sweep)",
                     serial_s, pooled_s, 8, episodes),
    )


def test_full_sweep_speedup(results_dir):
    """The acceptance benchmark: full 81-cell paper sweep, 1 vs 4 workers."""
    episodes = default_episodes(100)
    kwargs = dict(episodes=episodes, seed=1, timing="simulated")
    serial, serial_s = _timed_sweep(1, **kwargs)
    pooled, pooled_s = _timed_sweep(4, **kwargs)
    assert _fingerprints(serial) == _fingerprints(pooled)
    save_artifact(
        results_dir,
        "runner_speedup.md",
        _render_note("Runner speedup (full 81-cell paper sweep)",
                     serial_s, pooled_s, 81, episodes),
    )
    if (os.cpu_count() or 1) >= 4:
        assert serial_s / pooled_s >= 2.0, (
            f"expected >=2x speedup at 4 workers on a "
            f"{os.cpu_count()}-core host: serial {serial_s:.2f}s, "
            f"pooled {pooled_s:.2f}s"
        )
