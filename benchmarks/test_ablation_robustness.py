"""Ablation A5 — robustness to cloud dynamics beyond the paper's setup.

(a) Noise: the same two plans (HEFT's and ReASSIgN's) executed under
calm / default / stormy region profiles — times must degrade with noise
for both, and ReASSIgN's concentrated placement must not fall apart in
the storm.

(b) Spot revocations: a static plan deadlocks when a VM it targets is
reclaimed; online schedulers (including ReASSIgN acting online) reroute
and finish.  This is the strongest form of the paper's thesis that
schedulers should adapt to the environment rather than assume a model.
"""

import math

from repro.experiments import default_episodes
from repro.experiments.ablations import (
    run_noise_robustness,
    run_revocation_ablation,
)
from repro.util.tables import render_table

from conftest import save_artifact


def test_ablation_a5_noise(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: run_noise_robustness(episodes=default_episodes(50), seed=1),
        rounds=1, iterations=1,
    )
    text = render_table(
        ["cloud profile", "HEFT [s]", "ReASSIgN [s]"],
        [(p, round(h, 1), round(r, 1)) for p, h, r in rows],
        title="Ablation A5a: execution under noise profiles (Montage-50, 32 vCPUs)",
    )
    save_artifact(results_dir, "ablation_a5_noise.txt", text)

    by_profile = {p: (h, r) for p, h, r in rows}
    assert set(by_profile) == {"calm", "default", "stormy"}
    # noise hurts everyone
    assert by_profile["calm"][0] < by_profile["stormy"][0]
    assert by_profile["calm"][1] < by_profile["stormy"][1]
    # ReASSIgN stays within 35% of HEFT in every climate
    for profile, (heft, rl) in by_profile.items():
        assert rl < heft * 1.35, (profile, heft, rl)


def test_ablation_a5_revocations(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: run_revocation_ablation(seed=1), rounds=1, iterations=1
    )
    text = render_table(
        ["scheduler", "outcome", "makespan [s]"],
        [
            (s, o, "inf" if math.isinf(m) else round(m, 1))
            for s, o, m in rows
        ],
        title="Ablation A5b: spot revocations (Montage-50, 16 vCPUs, "
              "half the fleet on spot)",
    )
    save_artifact(results_dir, "ablation_a5_revocations.txt", text)

    outcomes = {s: o for s, o, _ in rows}
    # the static plan cannot survive losing its target VMs
    assert outcomes["HEFT (static plan)"] == "deadlocked"
    # adaptive schedulers finish
    assert outcomes["Greedy online"] == "successfully finished"
    assert outcomes["ReASSIgN online"] == "successfully finished"
