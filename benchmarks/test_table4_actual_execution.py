"""Table IV — actual execution time of Montage on the (simulated) cloud.

HEFT vs ReASSIgN (γ = 1.0, ε = 0.1, α ∈ {0.1, 0.5, 1.0}) per Table-I
fleet, executed by SciCumulus-RL's MPI engine on the noisy simulated AWS
region.  Paper shape: all runs land in the same few-minute band, HEFT
wins narrowly on the 16-vCPU fleet, and ReASSIgN configurations win on
the larger fleets — the learned concentrate-on-the-2xlarge placement
avoids micro-instance burst throttling that HEFT's static cost model
cannot see.  Margins in the paper are ~5-15%, i.e. noise-adjacent, so
the assertions check the band and the aggregate ordering rather than
every row.
"""

import numpy as np

from repro.experiments import default_episodes, run_table4
from repro.experiments.table4 import render_table4

from conftest import save_artifact


def test_table4(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: run_table4(episodes=default_episodes(100), seed=1),
        rounds=1, iterations=1,
    )
    save_artifact(results_dir, "table4.txt", render_table4(rows))

    by_fleet = {}
    for r in rows:
        by_fleet.setdefault(r.vcpus, []).append(r)
    assert set(by_fleet) == {16, 32, 64}
    assert all(len(v) == 4 for v in by_fleet.values())

    # all execution times live in the same few-minute band (paper: 3-4 min)
    times = [r.total_execution_time for r in rows]
    assert max(times) < 3 * min(times)

    # aggregate ordering: over the two big fleets, the best ReASSIgN
    # configuration beats HEFT (the paper's 32/64-vCPU crossover)
    wins = 0
    for vcpus in (32, 64):
        heft = next(r for r in by_fleet[vcpus] if r.algorithm == "HEFT")
        best_rl = min(
            (r for r in by_fleet[vcpus] if r.algorithm == "ReASSIgN"),
            key=lambda r: r.total_execution_time,
        )
        if best_rl.total_execution_time < heft.total_execution_time:
            wins += 1
    assert wins >= 1, "ReASSIgN should win on at least one large fleet"

    # and overall the two schedulers stay close (the paper's margins are
    # single-digit percent): mean RL time within 25% of mean HEFT time
    heft_mean = np.mean(
        [r.total_execution_time for r in rows if r.algorithm == "HEFT"]
    )
    rl_mean = np.mean(
        [r.total_execution_time for r in rows if r.algorithm == "ReASSIgN"]
    )
    assert abs(rl_mean - heft_mean) / heft_mean < 0.25
