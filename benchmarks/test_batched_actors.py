"""Batched-actor benchmark — fused wave chunks vs one-episode waves.

Times the distributed actor/learner engine on Montage-50 (16-vCPU
Table-I fleet, paper parameters α=0.5, γ=1.0, ε=0.1, 100 episodes) two
ways, holding the actor count fixed at 4:

- **single** (``batch=1``): the pre-chunking wave protocol — every
  actor speculates exactly one episode per wave, so the engine ships a
  snapshot base, dispatches a task and validates a trace once per
  committed episode;
- **fused** (``batch=8``): the chunked wave protocol — every actor
  rolls out eight chained episodes per wave chunk through the fused
  lane stepper, so snapshot shipping, worker dispatch and wave
  bookkeeping amortize over the whole chain.

Both arms pin ``mode="pool"``: the wave protocol under measurement is
the actor-pool transport (on the inline engine the dedicated
plain-inline loop drives every episode directly on the learner chain,
so chunk depth cannot matter there by construction).  The guarded
ratio is an *engine vs itself* A/B in the same process tree, so a
slower host moves both arms together; even on a single core — where
the pool buys no overlap — the ratio isolates exactly the per-task
IPC/checkpoint amortization.  ``host_cores``/``pool_mode`` in the
frozen artifact say which regime produced a number.

Equivalence gates every number: both arms must agree bit for bit on
the deterministic :func:`~conftest.learning_fingerprint` — the chunked
protocol's contract is that ``(n_actors, batch)`` never changes a
single result byte.

Results go to ``results/batched_actors.md`` (prose) and
``results/BENCH_batched_actors.json`` (machine-readable; the
``fused_wave_vs_single_speedup`` ratio is frozen and guarded by
``tools/bench_guard.py``).
"""

import json
import time

import pytest

from repro.core.distributed import learn_distributed
from repro.core.reassign import ReassignParams
from repro.experiments.environments import fleet_for
from repro.workflows.montage import montage

from conftest import (
    gc_paused,
    git_head,
    host_provenance,
    learning_fingerprint,
    save_artifact,
)

#: The frozen protocol: Montage-50, 100 episodes, 4 actors, chunk depth
#: 8 in the fused arm.  Deliberately NOT scaled by REPRO_EPISODES: the
#: guarded ratio amortizes per-wave overheads over the episode count,
#: so fresh CI values are only comparable to the frozen baseline at the
#: frozen episode count.  The fast variant economizes via reps.
_EPISODES = 100
_ACTORS = 4
_BATCH = 8


def _params():
    return ReassignParams(
        alpha=0.5, gamma=1.0, epsilon=0.1, episodes=_EPISODES
    )


def _arm(wf, fleet, batch):
    """One pool-mode distributed run at the given wave chunk depth."""
    stats = {}
    with gc_paused():
        started = time.perf_counter()
        result = learn_distributed(
            wf, fleet, _params(), seed=1, n_actors=_ACTORS, batch=batch,
            mode="pool", stats_out=stats,
        )
        elapsed = time.perf_counter() - started
    return result, elapsed, stats


def _bench_json(reps, single_s, fused_s, single_stats, fused_stats):
    payload = {
        "benchmark": "batched_actors",
        "workflow": "montage-50",
        "vcpus": 16,
        "episodes": _EPISODES,
        "n_actors": _ACTORS,
        "fused_batch": _BATCH,
        "reps_best_of": reps,
        **host_provenance(),
        "commit": git_head(),
        "single_seconds": single_s,
        "single_eps_per_sec": _EPISODES / single_s,
        "single_waves": single_stats["waves"],
        "fused_seconds": fused_s,
        "fused_eps_per_sec": _EPISODES / fused_s,
        "fused_waves": fused_stats["waves"],
        "fused_wave_vs_single_speedup": single_s / fused_s,
        "mode": fused_stats["mode"],
    }
    return json.dumps(payload, indent=1, sort_keys=True)


def _render_note(reps, single_s, fused_s, single_stats, fused_stats):
    return "\n".join([
        "# Batched speculative rollout (wave chunk depth A/B)",
        "",
        f"- host cores: {host_provenance()['host_cores']} "
        f"(auto would pick {host_provenance()['pool_mode']}; both arms "
        f"pin mode={fused_stats['mode']})",
        f"- commit: {git_head()}",
        "- workflow: Montage-50, 16-vCPU Table-I fleet, a=0.5 g=1.0 "
        "e=0.1",
        f"- episodes per arm: {_EPISODES}, {_ACTORS} actors "
        f"(best of {reps})",
        f"- batch=1 (one episode per actor wave): {single_s:.3f} s "
        f"({_EPISODES / single_s:.1f} eps/s, "
        f"{single_stats['waves']} waves)",
        f"- batch={_BATCH} (fused wave chunks): {fused_s:.3f} s "
        f"({_EPISODES / fused_s:.1f} eps/s, "
        f"{fused_stats['waves']} waves)",
        f"- fused vs single: {single_s / fused_s:.2f}x",
        "",
        "Both arms produced bit-identical learning fingerprints before",
        "any throughput counted.  Holding the actor count and the pool",
        "transport fixed, the ratio isolates the chunked wave protocol:",
        "driving B chained episodes per actor chunk amortizes snapshot",
        "shipping, worker dispatch and wave bookkeeping that the",
        "batch=1 protocol pays once per committed episode.",
    ])


def _run_and_record(results_dir, reps):
    wf = montage(50, seed=1)
    fleet = fleet_for(16)
    # warmup outside the timed reps (primes numpy, kernel caches)
    _arm(wf, fleet, _BATCH)
    _arm(wf, fleet, 1)
    # interleave the arms rep by rep so a host noise window inflates
    # both instead of landing entirely on one (see conftest docstring)
    single_res, single_s, single_stats = _arm(wf, fleet, 1)
    fused_res, fused_s, fused_stats = _arm(wf, fleet, _BATCH)
    for _ in range(reps - 1):
        res, secs, st = _arm(wf, fleet, 1)
        if secs < single_s:
            single_res, single_s, single_stats = res, secs, st
        res, secs, st = _arm(wf, fleet, _BATCH)
        if secs < fused_s:
            fused_res, fused_s, fused_stats = res, secs, st
    assert learning_fingerprint(fused_res) == learning_fingerprint(
        single_res
    ), "wave chunk depth changed the learning result — numbers void"
    save_artifact(
        results_dir,
        "batched_actors.md",
        _render_note(reps, single_s, fused_s, single_stats, fused_stats),
    )
    save_artifact(
        results_dir,
        "BENCH_batched_actors.json",
        _bench_json(reps, single_s, fused_s, single_stats, fused_stats),
    )
    return single_s, fused_s


@pytest.mark.fast
def test_batched_actors_fast(results_dir):
    """CI A/B at the frozen protocol, single rep.

    Runs the exact frozen-baseline protocol so the fresh
    ``fused_wave_vs_single_speedup`` is comparable to the frozen one;
    the single rep keeps it CI-sized.  The strict >=1.4x assertion
    lives in the full variant — here the fused arm must simply not be
    slower, and the frozen-ratio regression check is
    ``tools/bench_guard.py``'s job (fresh ratio >= 0.75 x frozen).
    """
    single_s, fused_s = _run_and_record(results_dir, reps=1)
    assert fused_s <= single_s, (
        f"fused wave chunks slower than one-episode waves: "
        f"{fused_s:.3f}s vs {single_s:.3f}s"
    )


def test_batched_actors_full(results_dir):
    """Full A/B, >=1.4x over the one-episode-per-wave protocol."""
    single_s, fused_s = _run_and_record(results_dir, reps=5)
    speedup = single_s / fused_s
    assert speedup >= 1.4, (
        f"expected >=1.4x from wave chunking: "
        f"batch=1 {single_s:.3f}s, batch={_BATCH} {fused_s:.3f}s "
        f"({speedup:.2f}x)"
    )
