"""Figure 1 — the SciCumulus-RL architecture, exercised end to end.

The benchmark drives every Fig.-1 component in pipeline order (SCSetup →
WorkflowSim/ReASSIgN → SCStarter → SCCore → provenance) and asserts each
stage left evidence.  The rendered artifact is the architecture diagram
plus the live trace.
"""

from repro.experiments import default_episodes, run_figure1

from conftest import save_artifact


def test_figure1(benchmark, results_dir):
    trace = benchmark.pedantic(
        lambda: run_figure1(episodes=default_episodes(25), seed=1),
        rounds=1, iterations=1,
    )
    save_artifact(results_dir, "figure1.txt", trace.text())

    report = trace.report
    # SCSetup: the XML specification existed and round-tripped
    assert trace.spec_xml_chars > 1000
    # WorkflowSim stage: learning really ran
    assert report.learning_time > 0
    assert report.simulated_makespan > 0
    # SCStarter: a 16-vCPU fleet was deployed with boot latency
    assert report.vcpus == 16
    assert report.deploy_time > 0
    # SCCore: the MPI engine executed all 50 activations successfully
    assert report.execution.succeeded
    assert len(report.execution.records) == 50
    # Provenance: both the learning run and the execution were recorded
    assert trace.n_learning_runs == 1
    assert trace.n_recorded_executions == 1
    # billing happened
    assert report.cost > 0
