"""Service-throughput benchmark — shared-fleet multiplexing vs serial.

Runs the streaming scheduler service over a bursty multi-tenant
workload two ways with identical jobs and seeds:

- **service path**: one :class:`~repro.service.timeline.FleetTimeline`
  multiplexes every in-flight job over the shared fleet (the streaming
  deployment);
- **serial path**: each job gets the whole fleet to itself, one job at
  a time — the one-job-per-cluster shape the one-shot simulator models.

Two kinds of numbers come out:

- **wall-clock scheduling throughput** (jobs/s and activations/s of
  *simulator wall time*): how fast the service engine grinds through
  decisions.  Absolute and machine-dependent — reported, asserted with
  a generous floor in the full run, never guarded across machines.
- **ratio / simulated metrics**: ``service_vs_serial_ratio`` (simulated
  serial occupancy time / simulated service makespan — the
  consolidation win from filling idle slots with other tenants' work)
  and ``fleet_utilization``.  These are pure functions of the seed —
  deterministic, machine-independent — and are the metrics
  ``tools/bench_guard.py`` guards.

Determinism check rides along: the service path must produce
byte-identical metrics JSON on a repeat run before any number counts.
Results go to ``results/service_throughput.md`` (prose) and
``results/BENCH_service_throughput.json`` (machine-readable, guarded).
"""

import json
import os
import time

import pytest

from repro.service import (
    PoissonArrivals,
    SchedulerService,
    ServiceConfig,
    TraceArrivals,
    default_tenants,
)

from conftest import gc_paused, host_provenance, save_artifact

#: Arrival burst: jobs/s of *simulated* time — high enough that the
#: fleet is contended and multiplexing matters.
_RATE = 0.2
_TENANTS = 3
_POLICY = "fair"
_VCPUS = 16


def _arrivals(n_jobs, seed=42):
    return PoissonArrivals(
        _RATE,
        default_tenants(_TENANTS, "montage", 20),
        seed=seed,
        max_jobs=n_jobs,
    )


def _service_path(arrivals, seed):
    """One multiplexed service run; returns (result, wall seconds)."""
    service = SchedulerService(
        arrivals, ServiceConfig(vcpus=_VCPUS, policy=_POLICY), seed=seed
    )
    with gc_paused():
        started = time.perf_counter()
        result = service.run()
        elapsed = time.perf_counter() - started
    return result, elapsed


def _serial_path(arrivals, seed):
    """Each job alone on the fleet, back to back.

    Returns the summed *simulated* occupancy (the time a dedicated
    fleet would be held to drain the same jobs serially) and the wall
    seconds spent simulating.
    """
    config = ServiceConfig(vcpus=_VCPUS, policy=_POLICY)
    simulated = 0.0
    with gc_paused():
        started = time.perf_counter()
        for job in arrivals.schedule():
            solo = type(job)(
                job_id=job.job_id,
                tenant=job.tenant,
                workflow=job.workflow,
                size=job.size,
                arrival_time=0.0,
                workflow_seed=job.workflow_seed,
            )
            result = SchedulerService(
                TraceArrivals([solo]), config, seed=seed
            ).run()
            simulated += result.end_time
        elapsed = time.perf_counter() - started
    return simulated, elapsed


def _render_note(n_jobs, result, service_wall, serial_sim, serial_wall,
                 ratio):
    jobs_per_sec = n_jobs / service_wall if service_wall > 0 else float("inf")
    acts_per_sec = (
        result.n_activations / service_wall
        if service_wall > 0
        else float("inf")
    )
    return "\n".join([
        "# Service throughput (shared-fleet multiplexing)",
        "",
        f"- host cores: {os.cpu_count() or 1}",
        f"- workload: {n_jobs} Montage-20 jobs, {_TENANTS} tenants, "
        f"Poisson rate {_RATE}/s, policy {_POLICY}, {_VCPUS}-vCPU fleet",
        f"- service path: {service_wall:.3f} s wall "
        f"({jobs_per_sec:.1f} jobs/s, {acts_per_sec:.1f} activations/s "
        "scheduled)",
        f"- serial path: {serial_wall:.3f} s wall",
        "",
        "Simulated (machine-independent, deterministic per seed):",
        f"- service makespan: {result.end_time:.1f} s simulated",
        f"- serial fleet occupancy: {serial_sim:.1f} s simulated",
        f"- consolidation ratio (serial/service): {ratio:.2f}x",
        f"- fleet utilization: {100.0 * result.utilization():.1f}%",
        f"- job latency: p50 {result.latency_percentile(50):.1f} s, "
        f"p99 {result.latency_percentile(99):.1f} s",
        "",
        "The ratio metrics and utilization are guarded by",
        "tools/bench_guard.py; wall-clock numbers measure the runner and",
        "are reported only.",
    ])


def _bench_json(n_jobs, result, service_wall, serial_sim, serial_wall,
                ratio):
    jobs_per_sec = n_jobs / service_wall if service_wall > 0 else None
    return json.dumps(
        {
            "benchmark": "service_throughput",
            "workload": f"montage-20 x {n_jobs}",
            "tenants": _TENANTS,
            "policy": _POLICY,
            "vcpus": _VCPUS,
            "rate_jobs_per_sim_sec": _RATE,
            "n_jobs": n_jobs,
            "n_activations": result.n_activations,
            **host_provenance(),
            "service_wall_seconds": service_wall,
            "scheduled_jobs_per_sec": jobs_per_sec,
            "scheduled_activations_per_sec": (
                result.n_activations / service_wall
                if service_wall > 0
                else None
            ),
            "serial_wall_seconds": serial_wall,
            "service_simulated_makespan": result.end_time,
            "serial_simulated_occupancy": serial_sim,
            "service_vs_serial_ratio": ratio,
            "fleet_utilization": result.utilization(),
            "p50_latency": result.latency_percentile(50),
            "p99_latency": result.latency_percentile(99),
        },
        indent=1,
        sort_keys=True,
    )


def _run_and_record(results_dir, n_jobs):
    arrivals = _arrivals(n_jobs)
    result, service_wall = _service_path(arrivals, seed=42)
    repeat, _ = _service_path(arrivals, seed=42)
    assert result.to_json(include_jobs=True) == repeat.to_json(
        include_jobs=True
    ), "service run not deterministic — throughput numbers void"
    serial_sim, serial_wall = _serial_path(arrivals, seed=42)
    ratio = serial_sim / result.end_time if result.end_time > 0 else 0.0
    save_artifact(
        results_dir,
        "service_throughput.md",
        _render_note(n_jobs, result, service_wall, serial_sim,
                     serial_wall, ratio),
    )
    save_artifact(
        results_dir,
        "BENCH_service_throughput.json",
        _bench_json(n_jobs, result, service_wall, serial_sim,
                    serial_wall, ratio),
    )
    return result, service_wall, ratio


@pytest.mark.fast
@pytest.mark.service
def test_service_throughput_fast(results_dir):
    """CI-sized run: multiplexing must beat serial fleet occupancy."""
    result, _, ratio = _run_and_record(results_dir, n_jobs=20)
    assert result.n_failed == 0
    assert ratio > 1.0, (
        f"shared-fleet multiplexing should consolidate: got {ratio:.2f}x"
    )


@pytest.mark.service
def test_service_throughput_full(results_dir):
    """Full-length run with the wall-clock scheduling-rate floor."""
    result, service_wall, ratio = _run_and_record(results_dir, n_jobs=60)
    assert result.n_failed == 0
    assert ratio > 1.0
    jobs_per_sec = 60 / service_wall
    assert jobs_per_sec >= 200.0, (
        f"service engine scheduled only {jobs_per_sec:.0f} jobs/s wall "
        "(floor 200)"
    )
