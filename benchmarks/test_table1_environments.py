"""Table I — VM fleet configurations.

Regenerates the paper's environment table and benchmarks fleet
construction (trivial, but it anchors every other experiment's setup).
"""

from repro.experiments import TABLE1_FLEETS, fleet_for, render_table1
from repro.sim.vm import fleet_vcpus

from conftest import save_artifact


def test_table1(benchmark, results_dir):
    def build_all():
        return {v: fleet_for(v) for v in sorted(TABLE1_FLEETS)}

    fleets = benchmark.pedantic(build_all, rounds=1, iterations=1)

    # paper shape: 9/11/15 VMs -> 16/32/64 vCPUs, micros at ids 0..7
    assert {v: len(f) for v, f in fleets.items()} == {16: 9, 32: 11, 64: 15}
    for vcpus, fleet in fleets.items():
        assert fleet_vcpus(fleet) == vcpus
        assert all(vm.type.name == "t2.micro" for vm in fleet[:8])
        assert all(vm.type.name == "t2.2xlarge" for vm in fleet[8:])

    save_artifact(results_dir, "table1.txt", render_table1())
