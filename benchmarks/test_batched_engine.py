"""Batched-engine benchmark — lockstep lanes vs the per-cell sweep path.

Times one fleet's Montage-50 (α, ε) sweep column two ways, both through
the real consumer (:func:`repro.core.sweep.sweep_tasks` +
:class:`repro.runner.ParallelRunner`, ``workers=1``), so the measured
gap is exactly what ``repro sweep`` users get:

- **serial**: ``batch=1`` — one :func:`run_sweep_cell` task per cell,
  each driving ``ReassignLearner.learn()`` through the kernel-reuse
  episode loop (the PR 4 decision-loop fast path, with the per-worker
  kernel cache sharing one kernel build across cells);
- **batched**: ``batch=len(cells)`` — one :func:`run_sweep_batch` task
  packing every cell as a lockstep lane of
  :func:`repro.core.batch.learn_batch`: per step, ready/idle scans,
  action-pair interning, ε-greedy gathers and Q scatters run once per
  *lane group* over shared caches instead of once per learner.

Equivalence gates every number: both arms run ``timing="simulated"``,
so each cell's full record — Q-table JSON, per-episode makespans,
plan, simulated learning time — is deterministic, and the arms must be
**bit-identical per cell** before any throughput counts.

Results go to ``results/batched_engine.md`` (prose) and
``results/BENCH_batched_engine.json`` (machine-readable; the
``batched_vs_serial_speedup`` ratio is frozen and guarded by
``tools/bench_guard.py``).
"""

import json
import os
import time

import pytest

from repro.core.sweep import flatten_sweep_values, sweep_tasks
from repro.experiments.environments import fleet_for
from repro.runner import ParallelRunner
from repro.runner.parallel import clear_kernel_cache
from repro.workflows.montage import montage

from conftest import (
    best_of,
    gc_paused,
    git_head,
    host_provenance,
    learning_fingerprint,
    save_artifact,
)

_GRID = (0.1, 0.5, 1.0)  # alphas x epsilons, gamma fixed at the paper's 1.0
# The paper protocol: 100 learning episodes per sweep cell (the
# run_paper_sweep default).  Deliberately NOT scaled by REPRO_EPISODES:
# the guarded speedup is amortization-dependent (the batched arm's
# shared caches pay off over the episode count), so fresh CI values are
# only comparable to the frozen baseline when both run the same episode
# count.  The fast variant economizes via reps, not episodes.
_EPISODES = 100


def _run_arm(wf, episodes, batch):
    """One full sweep column through the runner; returns (records, s).

    Garbage collection is drained before and disabled during the timed
    region: a collection pause landing in one arm but not the other
    would skew the ratio on a busy host.
    """
    clear_kernel_cache()
    tasks = sweep_tasks(
        wf,
        fleet_for(16),
        alphas=_GRID,
        gammas=(1.0,),
        epsilons=_GRID,
        episodes=episodes,
        seed=1,
        timing="simulated",
        batch=batch,
    )
    runner = ParallelRunner(workers=1, run_id="bench-batched", seed=1)
    with gc_paused():
        started = time.perf_counter()
        results = runner.run(tasks)
        elapsed = time.perf_counter() - started
    return flatten_sweep_values([r.value for r in results]), elapsed


def _cell_fingerprints(records):
    return [
        (r.params, r.learning_time, r.simulated_makespan,
         *learning_fingerprint(r.result))
        for r in records
    ]


def _bench_json(episodes, reps, n_cells, serial_s, batched_s):
    total_episodes = n_cells * episodes
    payload = {
        "benchmark": "batched_engine",
        "workflow": "montage-50",
        "vcpus": 16,
        "n_cells": n_cells,
        "episodes_per_cell": episodes,
        "reps_best_of": reps,
        **host_provenance(),
        "commit": git_head(),
        "serial_seconds": serial_s,
        "serial_eps_per_sec": total_episodes / serial_s,
        "batched_seconds": batched_s,
        "batched_eps_per_sec": total_episodes / batched_s,
        "batched_vs_serial_speedup": serial_s / batched_s,
    }
    return json.dumps(payload, indent=1, sort_keys=True)


def _render_note(episodes, reps, n_cells, serial_s, batched_s):
    total = n_cells * episodes
    return "\n".join([
        "# Batched-engine throughput (lockstep lanes A/B)",
        "",
        f"- host cores: {os.cpu_count() or 1}",
        f"- commit: {git_head()}",
        "- workflow: Montage-50, 16-vCPU Table-I fleet, burst-throttle",
        f"- sweep column: {n_cells} (alpha, epsilon) cells x "
        f"{episodes} episodes (best of {reps})",
        f"- serial (batch=1, one learner per cell): {serial_s:.3f} s "
        f"({total / serial_s:.1f} eps/s)",
        f"- batched (batch={n_cells}, lockstep lanes): {batched_s:.3f} s "
        f"({total / batched_s:.1f} eps/s)",
        f"- batched vs serial: {serial_s / batched_s:.2f}x",
        "",
        "Both arms ran the real sweep consumer (sweep_tasks + the",
        "parallel runner at workers=1) with timing=\"simulated\", and",
        "every cell's record — Q-table JSON, per-episode makespans,",
        "plan, simulated learning time — was bit-identical across arms",
        "before any throughput counted.  The speedup is the lockstep",
        "dividend: per simulation step, the batched engine pays the",
        "ready/idle scan, action-pair interning and Q gather/scatter",
        "once per lane group over shared content-addressed caches,",
        "instead of once per learner.",
    ])


def _run_and_record(results_dir, episodes, reps):
    wf = montage(50, seed=1)
    # short warmup outside the timed reps (primes numpy/caches)
    _run_arm(wf, 10, batch=1)
    serial_rec, serial_s = best_of(
        reps, lambda: _run_arm(wf, episodes, batch=1)
    )
    n_cells = len(serial_rec)
    batched_rec, batched_s = best_of(
        reps, lambda: _run_arm(wf, episodes, batch=n_cells)
    )
    assert _cell_fingerprints(serial_rec) == _cell_fingerprints(
        batched_rec
    ), "batched engine diverged from the serial path — numbers void"
    save_artifact(
        results_dir,
        "batched_engine.md",
        _render_note(episodes, reps, n_cells, serial_s, batched_s),
    )
    save_artifact(
        results_dir,
        "BENCH_batched_engine.json",
        _bench_json(episodes, reps, n_cells, serial_s, batched_s),
    )
    return serial_s, batched_s


@pytest.mark.fast
def test_batched_engine_fast(results_dir):
    """CI A/B at the frozen protocol, single rep.

    Runs the exact frozen-baseline protocol (paper-scale episode count,
    see ``_EPISODES``) so the fresh ``batched_vs_serial_speedup`` is
    comparable to the frozen one; the single rep keeps it CI-sized.
    The strict >=2x assertion lives in the full variant — here the
    batched path must simply not be slower, and the frozen-ratio
    regression check is ``tools/bench_guard.py``'s job (fresh
    speedup >= 0.75 x frozen).
    """
    serial_s, batched_s = _run_and_record(results_dir, _EPISODES, reps=1)
    assert batched_s <= serial_s, (
        f"batched engine slower than the serial path: "
        f"{batched_s:.3f}s vs {serial_s:.3f}s"
    )


def test_batched_engine_full(results_dir):
    """Full A/B, >=2x Montage-50 sweep learning throughput enforced."""
    serial_s, batched_s = _run_and_record(results_dir, _EPISODES, reps=5)
    speedup = serial_s / batched_s
    assert speedup >= 2.0, (
        f"expected >=2x over the per-cell sweep path: "
        f"serial {serial_s:.3f}s, batched {batched_s:.3f}s "
        f"({speedup:.2f}x)"
    )
