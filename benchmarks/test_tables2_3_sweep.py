"""Tables II and III — the 81-run (α, γ, ε) × fleet learning sweep.

One sweep produces both tables (they report two metrics of the same
runs).  Expected shapes:

- **Table II**: learning time grows with fleet size (the 64-vCPU column
  is the slowest — more VMs means a larger action space per decision);
- **Table III**: simulated makespan degrades monotonically with ε — the
  pattern in the paper's own data (259s at ε = 0.1 up to ~830-930s at
  ε = 1.0 within the γ = 1.0 slice), which identifies ε as the textbook
  exploration probability.  ε = 0.1 rows dominate.

A shape we report as *not* reproducing robustly (see EXPERIMENTS.md):
the paper's strong γ = 1.0 advantage.  In this MDP the workflow state
collapses to a single non-terminal label, so the bootstrap term
``max_a' Q(s', a')`` is common to all candidate actions and cancels in
the argmax — γ can only act through lock-in noise.  Our γ columns are
accordingly flat; the paper's dramatic (γ = 1.0, ε = 0.1) cells are
consistent with single-run luck.
"""

import numpy as np
import pytest

from repro.experiments import default_episodes, run_paper_sweep

from conftest import save_artifact


def test_tables_2_and_3(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_paper_sweep(episodes=default_episodes(100), seed=1),
        rounds=1, iterations=1,
    )
    save_artifact(results_dir, "table2.txt", result.render_table2())
    save_artifact(results_dir, "table3.txt", result.render_table3())

    # --- Table II shape: learning time grows with fleet size -----------
    # compare per-fleet *minima*: wall-clock means are sensitive to
    # background load on the machine, the minimum of 27 runs is not
    min_time = {
        v: float(np.min([r.learning_time for r in recs]))
        for v, recs in result.records.items()
    }
    assert min_time[16] < min_time[64], (
        f"expected 64-vCPU learning to be slowest, got {min_time}"
    )

    # --- Table III shape: eps=0.1 (mostly exploit) dominates -----------
    for vcpus, recs in result.records.items():
        by_eps = {}
        for r in recs:
            by_eps.setdefault(r.epsilon, []).append(r.simulated_makespan)
        means = {e: float(np.mean(v)) for e, v in by_eps.items()}
        assert means[0.1] < means[1.0], (
            f"{vcpus} vCPUs: eps=0.1 should beat eps=1.0, got {means}"
        )
        # at very small REPRO_EPISODES budgets heavy exploitation hasn't
        # had the exploration to pay off yet, so only check the full
        # ordering at a realistic budget
        if default_episodes(100) >= 50:
            assert means[0.1] <= means[0.5] * 1.02, (
                f"{vcpus} vCPUs: eps=0.1 should not lose to eps=0.5, "
                f"got {means}"
            )

    # --- Table III shape: an eps=0.1 cell is at (or within noise of)
    # the per-fleet optimum ----------------------------------------------
    for vcpus, recs in result.records.items():
        overall_best = min(r.simulated_makespan for r in recs)
        best_eps01 = min(
            r.simulated_makespan for r in recs if r.epsilon == 0.1
        )
        assert best_eps01 <= overall_best * 1.03, (
            f"{vcpus} vCPUs: best eps=0.1 cell ({best_eps01:.1f}s) should be "
            f"near the optimum ({overall_best:.1f}s)"
        )

    # --- learned plans beat fully-random ones (eps=1.0) ----------------
    for vcpus, recs in result.records.items():
        best = min(r.simulated_makespan for r in recs if r.epsilon == 0.1)
        random_mean = float(np.mean(
            [r.simulated_makespan for r in recs if r.epsilon == 1.0]
        ))
        assert best < random_mean, (vcpus, best, random_mean)
