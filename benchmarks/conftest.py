"""Benchmark-harness configuration.

Every benchmark regenerates one paper artifact (table/figure) exactly
once per session (``pedantic`` with a single round — these are experiment
reproductions, not micro-benchmarks) and writes the rendered artifact to
``results/`` so the repository keeps a copy of the regenerated tables.

Set ``REPRO_EPISODES`` to scale down learning episode counts (paper: 100).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(results_dir, name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it to the test log."""
    (results_dir / name).write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to results/{name}]")
