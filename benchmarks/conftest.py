"""Benchmark-harness configuration and shared measurement helpers.

Every benchmark regenerates one paper artifact (table/figure) exactly
once per session (``pedantic`` with a single round — these are experiment
reproductions, not micro-benchmarks) and writes the rendered artifact to
``results/`` so the repository keeps a copy of the regenerated tables.

The A/B throughput benchmarks (decision loop, batched engine, service,
distributed learning) share the same measurement discipline, so its
building blocks live here rather than being re-derived per file:

- :func:`gc_paused` — drain the collector before and disable it during
  a timed region, so a collection pause landing in one arm but not the
  other cannot skew a ratio;
- :func:`best_of` — best-of-N repetition, keeping the fastest run;
- :func:`git_head` — commit provenance for frozen ``BENCH_*.json``;
- :func:`learning_fingerprint` — the deterministic content of a
  :class:`~repro.core.reassign.LearningResult` (everything except wall
  clock), for the bit-identity gates that void throughput numbers on
  divergence.

Set ``REPRO_EPISODES`` to scale down learning episode counts (paper: 100).
"""

import contextlib
import gc
import pathlib
import subprocess

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(results_dir, name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it to the test log."""
    (results_dir / name).write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to results/{name}]")


@contextlib.contextmanager
def gc_paused():
    """Collector drained before, disabled during, re-enabled after."""
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def best_of(reps, run, elapsed=lambda r: r[1]):
    """Run ``run()`` ``reps`` times; keep the fastest result.

    ``run`` returns any tuple carrying its wall seconds; ``elapsed``
    extracts them (default: second element).
    """
    best = None
    for _ in range(reps):
        result = run()
        if best is None or elapsed(result) < elapsed(best):
            best = result
    return best


def host_provenance():
    """Host facts every frozen ``BENCH_*.json`` must carry.

    ``host_cores`` is the distributed engine's own core count (CPU
    affinity aware, so container quotas are respected) and ``pool_mode``
    is the actor transport its ``mode="auto"`` would resolve to on this
    host.  Ratio metrics divide machine speed out, but *which engine
    path* produced a frozen number is not divisible away — a single-core
    runner records inline-engine ratios that a multi-core reader would
    otherwise misattribute to the process pool.
    """
    from repro.core.distributed import host_cores

    cores = host_cores()
    return {
        "host_cores": cores,
        "pool_mode": "pool" if cores > 1 else "inline",
    }


def git_head():
    """Short HEAD hash for artifact provenance ('unknown' outside git)."""
    probe = subprocess.run(
        ["git", "-C", str(REPO_ROOT), "rev-parse", "--short", "HEAD"],
        capture_output=True,
        text=True,
    )
    return probe.stdout.strip() if probe.returncode == 0 else "unknown"


def learning_fingerprint(result):
    """Deterministic content of a LearningResult — no wall clock.

    Two engine arms (serial vs batched, serial vs distributed) must
    agree on this tuple bit for bit before their timing ratio counts.
    """
    return (
        result.qtable_json,
        result.plan.to_json(),
        result.simulated_makespan,
        result.simulated_learning_time,
        [e.to_dict() for e in result.episodes],
    )
