"""Reprolint incremental-cache benchmark — warm vs cold analysis.

Runs the two-phase analyzer over ``src/`` twice against the same cache
file:

- **cold**: empty cache — every file is parsed, per-file rules run, and
  cross-file facts are extracted;
- **warm**: nothing changed — phase 1 replays per-file findings and
  facts from the content-addressed cache and only the (cheap) project
  rules run live.

The guarded metric is ``warm_vs_cold_ratio`` (cold wall / warm wall):
both arms run in the same process on the same host, so machine speed
divides out and ``tools/bench_guard.py`` can hold the floor across CI
runners.  Byte-identity of the findings between the two arms is
asserted before any number counts — a cache that changes results would
make the speedup meaningless.

Results go to ``results/reprolint_throughput.md`` (prose) and
``results/BENCH_reprolint_throughput.json`` (machine-readable, guarded).
"""

import json
import os
import pathlib
import time

import pytest

from repro.analysis import analyze_project
from repro.analysis.report import render

from conftest import host_provenance, save_artifact

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_WARM_REPEATS = 3


def _run(cache_file):
    started = time.perf_counter()
    report = analyze_project([str(REPO_ROOT / "src")], cache_file=cache_file)
    return report, time.perf_counter() - started


def _render_note(report, cold_wall, warm_wall, ratio):
    return "\n".join([
        "# Reprolint throughput (incremental cache, warm vs cold)",
        "",
        f"- host cores: {os.cpu_count() or 1}",
        f"- corpus: src/ ({report.files_scanned} files, "
        f"{len(report.findings)} findings)",
        f"- cold run (parse + rules + fact extraction): {cold_wall:.3f} s",
        f"- warm run (cache replay + project rules, best of "
        f"{_WARM_REPEATS}): {warm_wall:.3f} s",
        f"- warm-vs-cold speedup: {ratio:.1f}x",
        "",
        "Findings are byte-identical between the arms (asserted).  The",
        "ratio is guarded by tools/bench_guard.py; absolute seconds",
        "measure the runner and are reported only.",
    ])


def _bench_json(report, cold_wall, warm_wall, ratio):
    return json.dumps(
        {
            "benchmark": "reprolint_throughput",
            "corpus": "src",
            "files_scanned": report.files_scanned,
            "n_findings": len(report.findings),
            **host_provenance(),
            "cold_wall_seconds": cold_wall,
            "warm_wall_seconds": warm_wall,
            "cold_files_per_sec": report.files_scanned / cold_wall
            if cold_wall > 0
            else None,
            "warm_vs_cold_ratio": ratio,
        },
        indent=1,
        sort_keys=True,
    )


@pytest.mark.fast
def test_reprolint_cache_throughput(results_dir, tmp_path):
    cache = str(tmp_path / "reprolint-cache.json")

    cold, cold_wall = _run(cache)
    assert cold.cache is not None
    assert (cold.cache.hits, cold.cache.misses) == (0, cold.files_scanned)
    assert cold.findings == [], [str(f) for f in cold.findings]

    warm = cold
    warm_wall = float("inf")
    for _ in range(_WARM_REPEATS):
        warm, wall = _run(cache)
        warm_wall = min(warm_wall, wall)
    assert warm.cache is not None
    assert (warm.cache.hits, warm.cache.misses) == (warm.files_scanned, 0)

    # the cache must be invisible in the output before any speedup counts
    assert render(warm.findings, warm.files_scanned, "json") == render(
        cold.findings, cold.files_scanned, "json"
    )

    ratio = cold_wall / max(warm_wall, 1e-9)
    save_artifact(
        results_dir,
        "reprolint_throughput.md",
        _render_note(cold, cold_wall, warm_wall, ratio),
    )
    save_artifact(
        results_dir,
        "BENCH_reprolint_throughput.json",
        _bench_json(cold, cold_wall, warm_wall, ratio),
    )
    assert ratio >= 5.0, (
        f"warm cache run only {ratio:.1f}x faster than cold (floor 5x)"
    )
