"""Ablations A1–A4 — design-choice benchmarks beyond the paper's tables.

A1 sweeps the reward constants (µ, ρ) that the paper fixes at 0.5;
A2 compares TD update rules (Q-learning / SARSA / Double-Q / random);
A3 runs HEFT vs ReASSIgN across all five Pegasus workflows + larger
Montage instances (the paper's future work);
A4 measures the episode-budget learning curve ("more episodes → better
plans").
"""

import numpy as np

from repro.experiments import default_episodes
from repro.experiments.ablations import (
    render_reward_ablation,
    run_episode_ablation,
    run_reward_ablation,
    run_rule_ablation,
    run_workload_ablation,
)
from repro.util.tables import render_table

from conftest import save_artifact


def test_ablation_a1_reward(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: run_reward_ablation(episodes=default_episodes(50), seed=1),
        rounds=1, iterations=1,
    )
    save_artifact(results_dir, "ablation_a1_reward.txt",
                  render_reward_ablation(rows))
    assert len(rows) == 15  # 5 mus x 3 rhos
    assert all(r.simulated_makespan > 0 for r in rows)
    assert all(-1.0 <= r.mean_final_reward <= 1.0 for r in rows)
    # the paper's mu=0.5 must be competitive with the extremes
    by_mu = {}
    for r in rows:
        by_mu.setdefault(r.mu, []).append(r.simulated_makespan)
    means = {mu: float(np.mean(v)) for mu, v in by_mu.items()}
    assert means[0.5] <= max(means.values())


def test_ablation_a2_rules(benchmark, results_dir):
    out = benchmark.pedantic(
        lambda: run_rule_ablation(episodes=default_episodes(50),
                                  seeds=(0, 1, 2)),
        rounds=1, iterations=1,
    )
    text = render_table(
        ["update rule", "mean simulated makespan [s]"],
        [(k, round(v, 2)) for k, v in sorted(out.items())],
        title="Ablation A2: TD update rule (Montage-50, 16 vCPUs)",
    )
    save_artifact(results_dir, "ablation_a2_rules.txt", text)
    assert set(out) == {"qlearning", "sarsa", "doubleq",
                        "random-exploration-only"}
    # every learner stays within a sane band of the others
    values = list(out.values())
    assert max(values) < 1.6 * min(values)


def test_ablation_a3_workloads(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: run_workload_ablation(episodes=default_episodes(50), seed=1),
        rounds=1, iterations=1,
    )
    text = render_table(
        ["workflow", "HEFT makespan [s]", "ReASSIgN makespan [s]", "ratio"],
        [
            (name, round(h, 1), round(r, 1), round(r / h, 3))
            for name, h, r in rows
        ],
        title="Ablation A3: workloads beyond Montage-50 (32 vCPUs)",
    )
    save_artifact(results_dir, "ablation_a3_workloads.txt", text)
    assert len(rows) == 7
    # ReASSIgN must stay competitive (within 60%) of HEFT on every workload
    for name, heft_mk, rl_mk in rows:
        assert rl_mk < heft_mk * 1.6, (name, heft_mk, rl_mk)


def test_ablation_a4_episodes(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: run_episode_ablation(seed=1),
        rounds=1, iterations=1,
    )
    text = render_table(
        ["episodes", "plan makespan [s]", "best episode [s]"],
        [(b, round(m, 1), round(best, 1)) for b, m, best in rows],
        title="Ablation A4: episode budget (Montage-50, 16 vCPUs)",
    )
    # also render the 200-episode learning curve itself
    from repro.core import ReassignLearner, ReassignParams
    from repro.experiments.environments import fleet_for
    from repro.util import ascii_plot
    from repro.workflows import montage

    curve = ReassignLearner(
        montage(50, seed=1), fleet_for(16),
        ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=200),
        seed=1,
    ).learn().makespan_curve()
    text += "\n\n" + ascii_plot(
        curve, title="Learning curve: per-episode makespan [s], 200 episodes",
        y_label="episode",
    )
    save_artifact(results_dir, "ablation_a4_episodes.txt", text)
    budgets = [b for b, _, _ in rows]
    assert budgets == sorted(budgets)
    # the paper's conjecture: the largest budget beats the smallest
    assert rows[-1][1] <= rows[0][1] * 1.05
    # best-episode makespan is monotone non-increasing in budget here
    best_small, best_large = rows[0][2], rows[-1][2]
    assert best_large <= best_small * 1.02
