"""Distributed-learning benchmark — actor/learner engine vs serial.

Times ReASSIgN learning on Montage-50 (16-vCPU Table-I fleet, paper
parameters α=0.5, γ=1.0, ε=0.1, 100 episodes) two ways:

- **serial**: ``ReassignLearner.learn()`` — the reference per-episode
  decision loop, one episode at a time on the true Q-table;
- **distributed**: :func:`repro.core.distributed.learn_distributed`
  with ``n_actors=4, batch=8, mode="auto"`` — speculative rollout
  actors, each rolling out eight chained episodes per wave chunk
  against versioned Q-table snapshots, feeding one ordered replay
  learner.

Equivalence gates every number: both arms must agree bit for bit on
the deterministic :func:`~conftest.learning_fingerprint` (Q-table JSON,
plan, per-episode records, simulated learning time) before any
throughput counts — the distributed engine's whole contract is that
actor count never changes a single result byte.

Where the speedup comes from depends on the host.  The ordered replay
learner consumes traces through the fused batched-engine primitives
(PR 8), and the chunked wave protocol drives ``batch`` chained
episodes per actor between checkpoints, so even on a single core —
where ``mode="auto"`` resolves to the inline engine and speculation
buys nothing — the distributed path clears >=4x over the serial loop.
On multi-core hosts the actor pool additionally overlaps rollout
simulation with replay; the recorded
``speculative_hit_rate``/``host_cores`` tell the two effects apart
when reading a frozen artifact.

Results go to ``results/distributed_learning.md`` (prose) and
``results/BENCH_distributed_learning.json`` (machine-readable; the
``distributed_vs_serial_speedup`` ratio is frozen and guarded by
``tools/bench_guard.py``).
"""

import json
import os
import time

import pytest

from repro.core.distributed import host_cores, learn_distributed
from repro.core.reassign import ReassignLearner, ReassignParams
from repro.experiments.environments import fleet_for
from repro.workflows.montage import montage

from conftest import (
    gc_paused,
    git_head,
    host_provenance,
    learning_fingerprint,
    save_artifact,
)

#: The paper protocol: Montage-50, 100 learning episodes.  Deliberately
#: NOT scaled by REPRO_EPISODES: the guarded speedup amortizes per-wave
#: overheads over the episode count, so fresh CI values are only
#: comparable to the frozen baseline at the frozen episode count.  The
#: fast variant economizes via reps, not episodes.
_EPISODES = 100
_ACTORS = 4
_BATCH = 8


def _params():
    return ReassignParams(
        alpha=0.5, gamma=1.0, epsilon=0.1, episodes=_EPISODES
    )


def _serial_arm(wf, fleet):
    """One serial reference run; returns (result, wall seconds)."""
    learner = ReassignLearner(wf, fleet, _params(), seed=1)
    with gc_paused():
        started = time.perf_counter()
        result = learner.learn()
        elapsed = time.perf_counter() - started
    return result, elapsed


def _distributed_arm(wf, fleet):
    """One distributed run; returns (result, wall seconds, stats)."""
    stats = {}
    with gc_paused():
        started = time.perf_counter()
        result = learn_distributed(
            wf, fleet, _params(), seed=1, n_actors=_ACTORS, batch=_BATCH,
            mode="auto", stats_out=stats,
        )
        elapsed = time.perf_counter() - started
    return result, elapsed, stats


def _bench_json(reps, serial_s, dist_s, stats):
    payload = {
        "benchmark": "distributed_learning",
        "workflow": "montage-50",
        "vcpus": 16,
        "episodes": _EPISODES,
        "n_actors": _ACTORS,
        "batch": _BATCH,
        "reps_best_of": reps,
        **host_provenance(),
        "commit": git_head(),
        "serial_seconds": serial_s,
        "serial_eps_per_sec": _EPISODES / serial_s,
        "distributed_seconds": dist_s,
        "distributed_eps_per_sec": _EPISODES / dist_s,
        "distributed_vs_serial_speedup": serial_s / dist_s,
        "mode": stats["mode"],
        "waves": stats["waves"],
        "exact_commits": stats["exact_commits"],
        "speculative_hits": stats["speculative_hits"],
        "speculative_misses": stats["speculative_misses"],
        "resims": stats["resims"],
        "speculative_hit_rate": stats["speculative_hit_rate"],
        "final_width": stats["final_width"],
    }
    return json.dumps(payload, indent=1, sort_keys=True)


def _fmt_rate(rate):
    """Hit rate for prose; None means the engine never speculated."""
    return "n/a (no speculation)" if rate is None else f"{rate:.2f}"


def _render_note(reps, serial_s, dist_s, stats):
    return "\n".join([
        "# Distributed learning throughput (actor/learner A/B)",
        "",
        f"- host cores: {host_cores()} (os.cpu_count {os.cpu_count()})",
        f"- commit: {git_head()}",
        "- workflow: Montage-50, 16-vCPU Table-I fleet, a=0.5 g=1.0 "
        "e=0.1",
        f"- episodes per arm: {_EPISODES} (best of {reps})",
        f"- serial (ReassignLearner.learn): {serial_s:.3f} s "
        f"({_EPISODES / serial_s:.1f} eps/s)",
        f"- distributed (n_actors={_ACTORS}, batch={_BATCH}, "
        f"mode={stats['mode']}): "
        f"{dist_s:.3f} s ({_EPISODES / dist_s:.1f} eps/s)",
        f"- distributed vs serial: {serial_s / dist_s:.2f}x",
        f"- speculation: {stats['speculative_hits']} hits / "
        f"{stats['speculative_misses']} misses "
        f"(hit rate {_fmt_rate(stats['speculative_hit_rate'])}, "
        f"{stats['exact_commits']} exact commits, "
        f"{stats['resims']} re-simulations, "
        f"final wave width {stats['final_width']})",
        "",
        "Both arms produced bit-identical learning fingerprints",
        "(Q-table JSON, plan, per-episode records, simulated learning",
        "time) before any throughput counted.  The speedup decomposes",
        "into (a) the ordered replay learner consuming traces through",
        "the fused batched-engine primitives instead of the generic",
        "per-episode loop, and (b) on multi-core hosts, actor-side",
        "rollout overlapping learner-side replay; the recorded",
        "host_cores and speculation stats say which effect dominated a",
        "given frozen artifact.",
    ])


def _run_and_record(results_dir, reps):
    wf = montage(50, seed=1)
    fleet = fleet_for(16)
    # warmup outside the timed reps (primes numpy, kernel caches)
    _distributed_arm(wf, fleet)
    _serial_arm(wf, fleet)
    # interleave the arms rep by rep: on a contended host a noise
    # window then inflates both arms instead of landing entirely on
    # one, so the best-of quotient stays a code measurement
    serial_res, serial_s = _serial_arm(wf, fleet)
    dist_res, dist_s, stats = _distributed_arm(wf, fleet)
    for _ in range(reps - 1):
        res, secs = _serial_arm(wf, fleet)
        if secs < serial_s:
            serial_res, serial_s = res, secs
        res, secs, st = _distributed_arm(wf, fleet)
        if secs < dist_s:
            dist_res, dist_s, stats = res, secs, st
    assert learning_fingerprint(dist_res) == learning_fingerprint(
        serial_res
    ), "distributed engine diverged from the serial path — numbers void"
    save_artifact(
        results_dir,
        "distributed_learning.md",
        _render_note(reps, serial_s, dist_s, stats),
    )
    save_artifact(
        results_dir,
        "BENCH_distributed_learning.json",
        _bench_json(reps, serial_s, dist_s, stats),
    )
    return serial_s, dist_s


@pytest.mark.fast
def test_distributed_learning_fast(results_dir):
    """CI A/B at the frozen protocol, single rep.

    Runs the exact frozen-baseline protocol so the fresh
    ``distributed_vs_serial_speedup`` is comparable to the frozen one;
    the single rep keeps it CI-sized.  The strict >=4x assertion
    lives in the full variant — here the distributed path must simply
    not be slower, and the frozen-ratio regression check is
    ``tools/bench_guard.py``'s job (fresh speedup >= 0.75 x frozen).
    """
    serial_s, dist_s = _run_and_record(results_dir, reps=1)
    assert dist_s <= serial_s, (
        f"distributed engine slower than the serial path: "
        f"{dist_s:.3f}s vs {serial_s:.3f}s"
    )


def test_distributed_learning_full(results_dir):
    """Full A/B, >=4x Montage-50 learning throughput enforced."""
    serial_s, dist_s = _run_and_record(results_dir, reps=5)
    speedup = serial_s / dist_s
    assert speedup >= 4.0, (
        f"expected >=4x over the serial learner: "
        f"serial {serial_s:.3f}s, distributed {dist_s:.3f}s "
        f"({speedup:.2f}x)"
    )
