"""Decision-loop benchmark — fast path vs legacy loop vs PR 3 baseline.

Times the ReASSIgN learning hot path on Montage-50 (16-vCPU Table-I
fleet, burst-throttle fluctuation) three ways, all driving the same
kernel-reuse episode loop with the same per-episode seeds:

- **fast path**: the current tree as shipped — interned dense
  (``backend="array"``) Q-table, version-cached ``ctx.action_pairs``
  cross product, incremental ``ctx.n_finished`` progress label, Welford
  reward inlined;
- **legacy loop**: an in-tree replica of the PR 3-era decision loop —
  dict-backed Q-table, per-decision ``[(ac.id, vm.id) for ... for ...]``
  rebuild, per-reward ``RunningStats`` round trip, per-label record
  scan — on today's simulator;
- **pre-refactor engine** (the PR 3 baseline): commit ``01b95de``
  checked out into a throwaway git worktree and driven in a
  subprocess, one ``WorkflowSimulator`` per episode — the exact engine
  whose 129.1 eps/s is recorded as ``pre_refactor_reference`` in
  ``results/BENCH_episode_throughput.json``.

Equivalence gates every number: all arms must produce bit-identical
per-episode makespans, and the fast and legacy arms byte-identical
Q-table JSON, before any throughput counts.

Read the two live ratios honestly.  Fast-vs-legacy isolates the
decision-loop micro-costs and lands near 1.0x on Montage-50 — at ~3
ready x idle pairs per decision the simulator dominates, and the dense
backend's wins (6-7x on wide action sets) vanish into noise.  The
headline >=2x is fast-vs-pre-refactor: the decision-loop fast path
*plus* the kernel/state split it rides on, measured against the same
baseline commit PR 3 froze, re-run on this machine in this run.  The
pre-refactor arm needs commit ``01b95de`` in the local object store;
shallow CI clones skip it and assert on the in-tree arms only.

Results go to ``results/decision_loop.md`` (prose) and
``results/BENCH_decision_loop.json`` (machine-readable, with commit
provenance for both HEAD and the baseline).
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.core.reassign import ReassignParams, ReassignScheduler
from repro.experiments import default_episodes
from repro.experiments.environments import fleet_for
from repro.rl.reward import PerformanceReward
from repro.sim.fluctuation import BurstThrottleFluctuation
from repro.sim.kernel import EpisodeKernel
from repro.util.rng import RngService
from repro.util.stats import RunningStats
from repro.workflows.montage import montage

from conftest import (
    best_of,
    gc_paused,
    git_head,
    host_provenance,
    save_artifact,
)

_REPO_ROOT = Path(__file__).resolve().parents[1]
_BASELINE_COMMIT = "01b95de"
_FLUCTUATION = dict(credit_seconds=60.0, throttle_factor=2.0)

#: What PR 3 froze for the same protocol (montage(50, seed=1), 16 vCPUs,
#: 30 episodes, best of 3) in ``results/BENCH_episode_throughput.json``.
_PR3_REFERENCE = {
    "source": "results/BENCH_episode_throughput.json",
    "commit": _BASELINE_COMMIT,
    "pre_refactor_eps_per_sec": 129.1,
    "kernel_eps_per_sec": 313.8,
}


def _episode_seeds(seed, n):
    rng = RngService(seed)
    return [rng.spawn_seed(f"episode:{i}") for i in range(n)]


def _params(backend="array"):
    return ReassignParams(
        alpha=0.5, gamma=1.0, epsilon=0.1, qtable_backend=backend
    )


class _LegacyReward(PerformanceReward):
    """PR 3-era reward: a RunningStats round trip per index_std call."""

    def index_std(self):
        spread = RunningStats()
        for tracker in self._vms.values():
            if tracker.count:
                spread.push(tracker.mean_index)
        return spread.std if spread.count >= 2 else 0.0


class _LegacyLoopScheduler(ReassignScheduler):
    """PR 3-era decision loop on today's simulator.

    Rebuilds the ready x idle product per decision and rescans the
    record list per label, exactly as ``c707881^`` did.  Same float
    operations in the same order as the fast path, so makespans and the
    Q-table must match bit for bit.
    """

    @staticmethod
    def _enumerate_actions(ctx):
        ready = ctx.ready_activations
        idle = ctx.idle_vms
        return [(ac.id, vm.id) for ac in ready for vm in idle]

    def _available_label(self, ctx):
        buckets = self.params.state_buckets
        if buckets <= 1:
            return "available"
        total = len(ctx.workflow)
        done = sum(1 for r in ctx.records if not r.failed)
        bucket = min(buckets - 1, int(buckets * done / max(total, 1)))
        return f"available:p{bucket}"


def _run_arm(wf, fleet, seeds, scheduler_cls, backend):
    """One fresh scheduler + kernel-reuse loop; returns (mks, s, qjson)."""
    params = _params(backend)
    scheduler = scheduler_cls(params, seed=1, learning=True)
    if scheduler_cls is _LegacyLoopScheduler:
        scheduler.reward = _LegacyReward(mu=params.mu, rho=params.rho)
    kernel = EpisodeKernel(
        wf, fleet, fluctuation=BurstThrottleFluctuation(**_FLUCTUATION)
    )
    makespans = []
    with gc_paused():
        started = time.perf_counter()
        for seed in seeds:
            makespans.append(kernel.run_episode(scheduler, seed).makespan)
        elapsed = time.perf_counter() - started
    return makespans, elapsed, scheduler.qtable.to_json()


#: Runs inside the baseline worktree's interpreter (its own src/ on
#: PYTHONPATH, nothing from this tree).  Mirrors the protocol above with
#: the only engine the baseline has: one WorkflowSimulator per episode.
_PRE_REFACTOR_SCRIPT = """\
import json, os, sys, time
from repro.core.reassign import ReassignParams, ReassignScheduler
from repro.experiments.environments import fleet_for
from repro.sim.fluctuation import BurstThrottleFluctuation
from repro.sim.simulator import WorkflowSimulator
from repro.util.rng import RngService
from repro.workflows.montage import montage

episodes = int(os.environ["DECISION_LOOP_EPISODES"])
reps = int(os.environ["DECISION_LOOP_REPS"])
wf = montage(50, seed=1)
fleet = fleet_for(16)
rng = RngService(1)
seeds = [rng.spawn_seed("episode:%d" % i) for i in range(episodes)]

def run():
    params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1)
    scheduler = ReassignScheduler(params, seed=1, learning=True)
    makespans = []
    started = time.perf_counter()
    for seed in seeds:
        sim = WorkflowSimulator(
            wf, fleet, scheduler,
            fluctuation=BurstThrottleFluctuation(
                credit_seconds=60.0, throttle_factor=2.0),
            seed=seed,
        )
        makespans.append(sim.run().makespan)
    return makespans, time.perf_counter() - started

run()  # warmup
best = None
for _ in range(reps):
    makespans, elapsed = run()
    if best is None or elapsed < best[1]:
        best = (makespans, elapsed)
json.dump({"makespans": best[0], "seconds": best[1]}, sys.stdout)
"""


def _baseline_commit_available():
    probe = subprocess.run(
        ["git", "-C", str(_REPO_ROOT), "rev-parse", "--verify", "--quiet",
         _BASELINE_COMMIT + "^{commit}"],
        capture_output=True,
        text=True,
    )
    return probe.returncode == 0


def _pre_refactor_arm(episodes, reps):
    """Baseline engine in a throwaway worktree; None when unavailable.

    The worktree is created and removed inside this call — shallow
    clones (CI) without the baseline commit skip the arm entirely.
    """
    if not _baseline_commit_available():
        return None
    worktree = tempfile.mkdtemp(prefix="decision-loop-baseline-")
    try:
        subprocess.run(
            ["git", "-C", str(_REPO_ROOT), "worktree", "add", "--detach",
             worktree, _BASELINE_COMMIT],
            check=True,
            capture_output=True,
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(worktree) / "src")
        env["DECISION_LOOP_EPISODES"] = str(episodes)
        env["DECISION_LOOP_REPS"] = str(reps)
        proc = subprocess.run(
            [sys.executable, "-"],
            input=_PRE_REFACTOR_SCRIPT,
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return json.loads(proc.stdout)
    finally:
        subprocess.run(
            ["git", "-C", str(_REPO_ROOT), "worktree", "remove", "--force",
             worktree],
            capture_output=True,
        )
        shutil.rmtree(worktree, ignore_errors=True)


def _bench_json(episodes, reps, fast_s, legacy_s, pre):
    payload = {
        "benchmark": "decision_loop",
        "workflow": "montage-50",
        "vcpus": 16,
        "episodes": episodes,
        "reps_best_of": reps,
        **host_provenance(),
        "commit": git_head(),
        "baseline_commit": _BASELINE_COMMIT,
        "fast_seconds": fast_s,
        "fast_eps_per_sec": episodes / fast_s,
        "legacy_loop_seconds": legacy_s,
        "legacy_loop_eps_per_sec": episodes / legacy_s,
        "fast_vs_legacy_ratio": legacy_s / fast_s,
        "pre_refactor_seconds": pre["seconds"] if pre else None,
        "pre_refactor_eps_per_sec": episodes / pre["seconds"] if pre else None,
        "fast_vs_pre_refactor_speedup": (
            pre["seconds"] / fast_s if pre else None
        ),
        "pr3_reference": _PR3_REFERENCE,
    }
    return json.dumps(payload, indent=1, sort_keys=True)


def _render_note(episodes, reps, fast_s, legacy_s, pre):
    fast_eps = episodes / fast_s
    legacy_eps = episodes / legacy_s
    lines = [
        "# Decision-loop throughput (fast path A/B)",
        "",
        f"- host cores: {os.cpu_count() or 1}",
        f"- commit: {git_head()} (baseline {_BASELINE_COMMIT})",
        "- workflow: Montage-50, 16-vCPU Table-I fleet, burst-throttle",
        f"- episodes per arm: {episodes} (best of {reps})",
        f"- fast path (array Q-table, cached pairs): {fast_s:.3f} s "
        f"({fast_eps:.1f} eps/s)",
        f"- legacy loop replica (dict Q-table, per-call rebuild): "
        f"{legacy_s:.3f} s ({legacy_eps:.1f} eps/s)",
        f"- fast vs legacy loop: {legacy_s / fast_s:.2f}x",
    ]
    if pre is not None:
        pre_eps = episodes / pre["seconds"]
        lines += [
            f"- pre-refactor engine (commit {_BASELINE_COMMIT}, worktree): "
            f"{pre['seconds']:.3f} s ({pre_eps:.1f} eps/s)",
            f"- fast vs pre-refactor (the PR 3 baseline): "
            f"{pre['seconds'] / fast_s:.2f}x",
        ]
    else:
        lines += [
            f"- pre-refactor arm skipped: commit {_BASELINE_COMMIT} not in "
            "the local object store (shallow clone)",
        ]
    lines += [
        "",
        "All arms ran the same scheduler configuration over the same",
        "episode seeds; per-episode makespans were bit-identical across",
        "arms and the fast/legacy Q-table JSON byte-identical before any",
        "throughput counted.  Fast-vs-legacy isolates the decision-loop",
        "micro-costs and sits near 1.0x here: Montage-50 decisions",
        "median ~3 ready x idle pairs, so the simulator dominates and the",
        "dense backend's large-action-set wins do not move end-to-end",
        "time.  The >=2x headline is fast vs the pre-refactor engine —",
        "the decision-loop fast path plus the kernel/state split,",
        "measured against the same commit PR 3 froze as its baseline",
        f"({_PR3_REFERENCE['pre_refactor_eps_per_sec']:.1f} eps/s in "
        "results/BENCH_episode_throughput.json), re-run on this machine",
        "in this run.",
    ]
    return "\n".join(lines)


def _run_and_record(results_dir, episodes, reps, with_baseline):
    wf = montage(50, seed=1)
    fleet = fleet_for(16)
    seeds = _episode_seeds(1, episodes)
    # warmup outside the timed reps
    _run_arm(wf, fleet, seeds, ReassignScheduler, "array")
    fast_mk, fast_s, fast_q = best_of(
        reps, lambda: _run_arm(wf, fleet, seeds, ReassignScheduler, "array")
    )
    legacy_mk, legacy_s, legacy_q = best_of(
        reps, lambda: _run_arm(wf, fleet, seeds, _LegacyLoopScheduler, "dict")
    )
    assert fast_mk == legacy_mk, (
        "fast and legacy decision loops diverged — throughput numbers void"
    )
    assert fast_q == legacy_q, (
        "fast and legacy Q-table JSON differ — throughput numbers void"
    )
    pre = _pre_refactor_arm(episodes, reps) if with_baseline else None
    if pre is not None:
        assert pre["makespans"] == fast_mk, (
            "pre-refactor engine diverged from the fast path — "
            "throughput numbers void"
        )
    save_artifact(
        results_dir,
        "decision_loop.md",
        _render_note(episodes, reps, fast_s, legacy_s, pre),
    )
    save_artifact(
        results_dir,
        "BENCH_decision_loop.json",
        _bench_json(episodes, reps, fast_s, legacy_s, pre),
    )
    return fast_s, legacy_s, pre


@pytest.mark.fast
def test_decision_loop_fast(results_dir):
    """CI-sized A/B: equivalence gates plus a generous no-regression floor.

    Skips the pre-refactor worktree arm (shallow clones lack the
    baseline commit) and tolerates wide timing noise — the strict >=2x
    assertion lives in the full variant, which re-measures the baseline
    engine in the same run.
    """
    episodes = default_episodes(10)
    fast_s, legacy_s, _ = _run_and_record(
        results_dir, episodes, reps=1, with_baseline=False
    )
    assert fast_s <= 2.0 * legacy_s, (
        f"fast decision loop grossly slower than the legacy replica: "
        f"{fast_s:.3f}s vs {legacy_s:.3f}s"
    )


def test_decision_loop_full(results_dir):
    """Full A/B including the PR 3 baseline engine, >=2x enforced."""
    episodes = default_episodes(30)
    fast_s, legacy_s, pre = _run_and_record(
        results_dir, episodes, reps=3, with_baseline=True
    )
    if pre is None:
        pytest.skip(
            f"baseline commit {_BASELINE_COMMIT} not available "
            "(shallow clone); in-tree arms recorded"
        )
    speedup = pre["seconds"] / fast_s
    assert speedup >= 2.0, (
        f"expected >=2x over the PR 3 baseline engine: "
        f"pre-refactor {pre['seconds']:.3f}s, fast {fast_s:.3f}s "
        f"({speedup:.2f}x)"
    )
