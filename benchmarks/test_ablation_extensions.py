"""Ablations A6/A7 — extension studies.

A6: the makespan/cost trade-off when the §III-B reward is made
price-aware (cost_weight = 0 is the paper's reward).  Expected Pareto
shape: growing weight moves work off the expensive 2xlarge — pay-per-use
cost falls, makespan rises.

A7: plan-based vs online cloud execution from the same trained Q-table
in a stormy region.  All modes must finish; the paper-style plan replay
is the reference, and the online modes stay within a moderate band of it
(they trade some efficiency for the ability to react — see A5b, where
only online modes survive revocations at all).
"""

from repro.experiments import default_episodes
from repro.experiments.ablations import (
    run_cost_ablation,
    run_execution_mode_ablation,
)
from repro.util.tables import render_table

from conftest import save_artifact


def test_ablation_a6_cost(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: run_cost_ablation(episodes=default_episodes(50), seed=1),
        rounds=1, iterations=1,
    )
    text = render_table(
        ["cost weight", "makespan [s]", "usage cost [$]", "on 2xlarge"],
        [(w, round(m, 1), round(c, 4), n) for w, m, c, n in rows],
        title="Ablation A6: cost-aware reward trade-off (Montage-50, 16 vCPUs)",
    )
    save_artifact(results_dir, "ablation_a6_cost.txt", text)

    base = rows[0]
    heavy = rows[-1]
    assert base[0] == 0.0
    # price pressure moves work off the 2xlarge ...
    assert heavy[3] < base[3], (base, heavy)
    # ... lowering the pay-per-use bill ...
    assert heavy[2] < base[2], (base, heavy)
    # ... at a makespan premium (or at worst a tie)
    assert heavy[1] >= base[1] * 0.98, (base, heavy)


def test_ablation_a7_execution_mode(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: run_execution_mode_ablation(
            episodes=default_episodes(50), seed=1
        ),
        rounds=1, iterations=1,
    )
    text = render_table(
        ["execution mode", "cloud time [s]"],
        [(m, round(t, 1)) for m, t in rows],
        title="Ablation A7: plan-based vs online ReASSIgN (stormy region, "
              "32 vCPUs)",
    )
    save_artifact(results_dir, "ablation_a7_execution_mode.txt", text)

    times = dict(rows)
    assert set(times) == {"plan-based", "online-greedy", "online-learning"}
    assert all(t > 0 for t in times.values())
    # the online modes stay within a moderate band of the plan replay
    assert max(times.values()) < 1.5 * min(times.values()), times


def test_ablation_a8_state_granularity(benchmark, results_dir):
    """A8: progress-bucketed states vs the paper's single aggregated state.

    With the single state the TD bootstrap cancels across actions
    (docs/rl.md); buckets give the value function something to condition
    on — but also dilute per-state experience, so at fixed episode
    budgets the trade-off can go either way.  The bench records the
    curve rather than asserting a winner.
    """
    from repro.experiments.ablations import run_state_ablation

    rows = benchmark.pedantic(
        lambda: run_state_ablation(episodes=default_episodes(50),
                                   seeds=(0, 1, 2)),
        rounds=1, iterations=1,
    )
    text = render_table(
        ["state buckets", "mean simulated makespan [s]"],
        [(b, round(m, 1)) for b, m in rows],
        title="Ablation A8: state-space granularity (Montage-50, 16 vCPUs)",
    )
    save_artifact(results_dir, "ablation_a8_states.txt", text)

    assert [b for b, _ in rows] == [1, 2, 4, 8]
    makespans = [m for _, m in rows]
    assert all(m > 0 for m in makespans)
    # granularity must not blow up the plan quality
    assert max(makespans) < 1.25 * min(makespans)


def test_ablation_a9_clustering(benchmark, results_dir):
    """A9: task clustering (WorkflowSim's Clustering Engine) trade-off.

    With a 2 s per-dispatch coordination charge, merging serial chains
    (vertical clustering) removes dispatches without losing parallelism
    and must not hurt; horizontal clustering at group size 3 sacrifices
    width that a 16-slot fleet still had use for, so it pays here — the
    classic granularity trade-off.
    """
    from repro.experiments.ablations import run_clustering_ablation

    rows = benchmark.pedantic(
        lambda: run_clustering_ablation(dispatch_overhead=2.0, seed=1),
        rounds=1, iterations=1,
    )
    text = render_table(
        ["clustering", "jobs", "makespan [s]"],
        [(s, n, round(m, 1)) for s, n, m in rows],
        title="Ablation A9: task clustering under 2s dispatch overhead "
              "(Montage-50, 16 vCPUs)",
    )
    save_artifact(results_dir, "ablation_a9_clustering.txt", text)

    times = {s: m for s, _, m in rows}
    jobs = {s: n for s, n, _ in rows}
    assert jobs["none"] == 50
    assert jobs["horizontal(3)"] < jobs["vertical"] < 50
    # merging serial chains amortizes dispatch overhead for free
    assert times["vertical"] <= times["none"] + 1e-6


def test_ablation_a10_ensemble_contention(benchmark, results_dir):
    """A10: ensembles — the contention regime the reward was built for.

    With four Montage instances sharing a 32-vCPU fleet, queue times stop
    being negligible and the µ-balanced §III-B reward has a real signal.
    Expected shape: ReASSIgN beats (or at worst matches) the HEFT and
    Min-Min plans on the shared fleet.
    """
    from repro.core import ReassignLearner, ReassignParams
    from repro.schedulers import (
        HeftScheduler,
        MinMinScheduler,
        PlanFollowingScheduler,
    )
    from repro.sim import BurstThrottleFluctuation, WorkflowSimulator, t2_fleet
    from repro.workflows import montage_ensemble

    def run():
        ensemble = montage_ensemble(4, 25, seed=9)
        fleet = t2_fleet(8, 3)
        throttle = BurstThrottleFluctuation(credit_seconds=240.0,
                                            throttle_factor=1.7)
        out = {}
        for scheduler in (HeftScheduler(), MinMinScheduler()):
            plan = scheduler.plan(ensemble, fleet)
            out[scheduler.name] = WorkflowSimulator(
                ensemble, fleet, PlanFollowingScheduler(plan),
                fluctuation=throttle, seed=0,
            ).run().makespan
        params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1,
                                episodes=default_episodes(50))
        out["ReASSIgN"] = ReassignLearner(
            ensemble, fleet, params, seed=21
        ).learn().simulated_makespan
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["scheduler", "ensemble makespan [s]"],
        [(k, round(v, 1)) for k, v in sorted(times.items())],
        title="Ablation A10: 4x Montage-25 ensemble on a shared 32-vCPU fleet",
    )
    save_artifact(results_dir, "ablation_a10_ensemble.txt", text)

    # competitive with the strongest baseline (slack covers the A11
    # stale-history effect at larger episode budgets)
    baseline = min(times["HEFT"], times["Min-Min"])
    assert times["ReASSIgN"] <= baseline * 1.25, times


def test_ablation_a11_reward_memory(benchmark, results_dir):
    """A11: the paper's cross-episode reward history vs per-episode reset.

    Finding: on chain-heavy workloads (Inspiral) the accumulated per-VM
    statistics go stale — the crisp reward stops responding, late
    episodes lock into degraded placements, and the *final* plan is far
    worse than the best episode.  Per-episode memory keeps the reward
    live and the final plan recovers to best-episode quality.
    """
    from repro.experiments.ablations import run_memory_ablation

    rows = benchmark.pedantic(
        lambda: run_memory_ablation(episodes=default_episodes(100)),
        rounds=1, iterations=1,
    )
    text = render_table(
        ["reward memory", "final plan [s]", "best episode [s]"],
        [(m, round(f, 1), round(b, 1)) for m, f, b in rows],
        title="Ablation A11: reward history (Inspiral-30, 32 vCPUs)",
    )
    save_artifact(results_dir, "ablation_a11_memory.txt", text)

    by_mode = {m: (f, b) for m, f, b in rows}
    assert set(by_mode) == {"full", "episode"}
    # at the paper's budget, episode memory's final plan must not be the
    # degraded one (it stays near its best episode)
    if default_episodes(100) >= 100:
        final, best = by_mode["episode"]
        assert final <= best * 1.10, by_mode
        # and it beats the stale full-history final plan
        assert final < by_mode["full"][0], by_mode
