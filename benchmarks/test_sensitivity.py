"""Seed sensitivity of the Table-IV comparison.

The paper reports single runs; this benchmark repeats HEFT vs ReASSIgN
across independent seeds per fleet and quantifies the noise band that
EXPERIMENTS.md refers to.  Measured shape: the two schedulers are
statistically *tied* — per-fleet means within a few percent, win
fractions scattered around 1/2 — which is precisely the paper's own
framing ("ReASSIgN presented execution times slightly smaller ... yet
very close to HEFT").  The assertions pin that band: neither scheduler
dominates, and neither falls out of the other's noise envelope.
"""

from repro.experiments import default_episodes
from repro.experiments.sensitivity import render_sensitivity, run_seed_sensitivity

from conftest import save_artifact


def test_seed_sensitivity(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: run_seed_sensitivity(
            seeds=(1, 2, 3), episodes=default_episodes(100)
        ),
        rounds=1, iterations=1,
    )
    save_artifact(results_dir, "sensitivity.txt", render_sensitivity(rows))

    assert [r.vcpus for r in rows] == [16, 32, 64]
    total_wins = sum(r.reassign_wins for r in rows)
    total_contests = sum(r.n_seeds for r in rows)
    # statistical tie: neither side sweeps the contests
    assert 0 < total_wins < total_contests, (
        f"degenerate outcome: ReASSIgN won {total_wins}/{total_contests}"
    )
    # and the means stay inside a tight shared band (the paper's margins
    # — 4-14% single-run — live inside this envelope)
    for r in rows:
        assert abs(r.reassign_mean - r.heft_mean) <= 0.10 * r.heft_mean, r
