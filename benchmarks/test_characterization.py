"""Workload characterization — the structural profile behind §IV-B.

Regenerates the Bharathi-style characterization table for every
synthetic workload and checks the structural signatures the scheduling
results rely on (Montage's nine levels, CyberShake's data weight,
Epigenomics' chain depth, SIPHT's wide cheap Patser pool).
"""

from repro.experiments.characterization import (
    render_characterization,
    run_characterization,
)

from conftest import save_artifact


def test_characterization(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: run_characterization(seed=0), rounds=1, iterations=1
    )
    save_artifact(results_dir, "characterization.txt",
                  render_characterization(rows))

    by_name = {r[0]: r for r in rows}
    assert set(by_name) == {
        "montage-25", "montage-50", "montage-100",
        "cybershake-30", "epigenomics-24", "inspiral-30", "sipht-30",
    }

    # Montage: fixed nine levels at every size; parallelism grows with size
    for name in ("montage-25", "montage-50", "montage-100"):
        assert by_name[name][3] == 9
    assert (by_name["montage-25"][7] < by_name["montage-50"][7]
            < by_name["montage-100"][7])

    # CyberShake is the most data-heavy non-Montage workflow
    non_montage = [r for r in rows if not r[0].startswith("montage")]
    heaviest = max(non_montage, key=lambda r: r[8])
    assert heaviest[0] == "cybershake-30"

    # Epigenomics is the deepest non-Montage chain
    deepest = max(non_montage, key=lambda r: r[3])
    assert deepest[0] == "epigenomics-24"

    # every workflow has exploitable parallelism
    assert all(r[7] > 1.0 for r in rows)
