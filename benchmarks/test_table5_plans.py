"""Table V — the activation→VM scheduling plans for 16 vCPUs.

Dumps the full 50-row plan table (HEFT vs C1/C2/C3) and checks the
paper's qualitative observations:

- HEFT "distributes the initial activations sequentially among the
  available virtual machines" — its entry activations cover most of the
  nine VMs;
- the ReASSIgN plans show "the predominance of schedules ... in the VM
  type 2xLarge" — each C plan places a larger share of activations on
  VM 8 than HEFT does.
"""

from repro.experiments import default_episodes, run_table5
from repro.experiments.table5 import render_table5
from repro.workflows import montage

from conftest import save_artifact


def test_table5(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_table5(episodes=default_episodes(100), seed=1),
        rounds=1, iterations=1,
    )
    save_artifact(results_dir, "table5.txt", render_table5(result))

    wf = montage(50, seed=1)
    heft = result.plans["HEFT"]

    # every plan covers all 50 activations on VMs 0..8
    for label, plan in result.plans.items():
        assert sorted(plan.assignment) == list(range(50)), label
        assert set(plan.assignment.values()) <= set(range(9)), label

    # HEFT spreads the entry activations across the fleet
    entry_vms = {heft.vm_of(i) for i in wf.entries()}
    assert len(entry_vms) >= 7, (
        f"HEFT should spread entries over the VMs, used only {entry_vms}"
    )

    # ReASSIgN plans concentrate on the 2xlarge (VM 8)
    heft_share = result.vm_share_on_big("HEFT")
    for label in ("C1", "C2", "C3"):
        share = result.vm_share_on_big(label)
        assert share > heft_share, (
            f"{label} should place more work on VM 8 than HEFT "
            f"({share:.2f} vs {heft_share:.2f})"
        )
