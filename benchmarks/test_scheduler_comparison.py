"""Cross-scheduler comparison — the library-wide leaderboard artifact.

Not a paper table, but the natural extension of its HEFT-vs-ReASSIgN
framing: every scheduler in the library on every benchmark workflow,
same throttle-aware simulator.  Assertions pin the sanity ordering the
literature predicts: the informed heuristics (HEFT/CPOP/Min-Min family)
beat the blind ones (OLB, FCFS, Random) on the throttling-free metric of
each workload's column minimum, and ReASSIgN stays competitive.
"""

import numpy as np

from repro.core import ReassignLearner, ReassignParams
from repro.experiments import default_episodes
from repro.schedulers import (
    BudgetConstrainedScheduler,
    CpopScheduler,
    FcfsScheduler,
    GreedyOnlineScheduler,
    HeftScheduler,
    LocalityScheduler,
    MaxMinScheduler,
    MctScheduler,
    MinMinScheduler,
    OlbScheduler,
    PlanFollowingScheduler,
    RandomScheduler,
    SufferageScheduler,
)
from repro.sim import BurstThrottleFluctuation, WorkflowSimulator, t2_fleet
from repro.util.tables import render_table
from repro.workflows import available_workflows, make_workflow

from conftest import save_artifact

INFORMED = ("HEFT", "CPOP", "Min-Min", "Max-Min", "Sufferage", "MCT")
BLIND = ("OLB", "FCFS", "Random")


def _run_matrix(episodes: int):
    fleet = t2_fleet(8, 3)
    throttle = BurstThrottleFluctuation(credit_seconds=240.0,
                                        throttle_factor=1.7)
    workloads = {name: make_workflow(name, seed=2)
                 for name in available_workflows()}

    matrix = {}

    def record(label, name, makespan):
        matrix.setdefault(label, {})[name] = makespan

    static = [HeftScheduler(), CpopScheduler(), MinMinScheduler(),
              MaxMinScheduler(), SufferageScheduler(), MctScheduler(),
              OlbScheduler(), BudgetConstrainedScheduler(budget_factor=0.5)]
    for scheduler in static:
        for name, wf in workloads.items():
            plan = scheduler.plan(wf, fleet)
            result = WorkflowSimulator(
                wf, fleet, PlanFollowingScheduler(plan),
                fluctuation=throttle, seed=0,
            ).run()
            record(scheduler.name, name, result.makespan)

    online = [("FCFS", FcfsScheduler), ("Greedy", GreedyOnlineScheduler),
              ("Locality", LocalityScheduler),
              ("Random", lambda: RandomScheduler(seed=9))]
    for label, factory in online:
        for name, wf in workloads.items():
            result = WorkflowSimulator(
                wf, fleet, factory(), fluctuation=throttle, seed=0,
            ).run()
            record(label, name, result.makespan)

    params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1,
                            episodes=episodes)
    for name, wf in workloads.items():
        result = ReassignLearner(wf, fleet, params, seed=4).learn()
        record("ReASSIgN", name, result.simulated_makespan)
    return matrix


def test_scheduler_comparison(benchmark, results_dir):
    matrix = benchmark.pedantic(
        lambda: _run_matrix(default_episodes(50)), rounds=1, iterations=1
    )
    names = available_workflows()
    rows = [
        [label] + [round(matrix[label][n], 1) for n in names]
        for label in sorted(matrix)
    ]
    text = render_table(["Scheduler"] + names, rows,
                        title="Scheduler leaderboard: makespan [s], 32 vCPUs")
    save_artifact(results_dir, "scheduler_comparison.txt", text)

    # informed heuristics beat blind dispatch on average
    informed_mean = np.mean(
        [matrix[s][n] for s in INFORMED for n in names]
    )
    blind_mean = np.mean([matrix[s][n] for s in BLIND for n in names])
    assert informed_mean <= blind_mean

    # ReASSIgN stays within 35% of the per-workload best.  The slack is
    # real, not defensive: with the paper's full-history reward the
    # signal goes stale on chain-heavy workloads and late episodes lock
    # into degraded placements (ablation A11 quantifies this and the
    # "episode" reward memory that fixes it).
    for name in names:
        best = min(matrix[label][name] for label in matrix)
        assert matrix["ReASSIgN"][name] <= best * 1.35, (name, best)
