#!/usr/bin/env python
"""The full SciCumulus-RL pipeline: learn in the simulator, execute "on AWS".

This is the paper's two-stage architecture (Figure 1) end to end, twice:

- run 1 learns from scratch (no provenance) and executes on the simulated
  cloud;
- run 2 reuses the provenance database (previous Q-table + execution
  history) so learning resumes instead of restarting — the paper's §III-C
  episode interconnection across executions.

HEFT executes on the same cloud for comparison.

Run:  python examples/montage_on_aws.py [episodes]
"""

import sys

from repro.core import ReassignParams
from repro.schedulers import HeftScheduler
from repro.scicumulus import CloudProfile, ProvenanceStore, SciCumulusRL
from repro.util.tables import format_hms, render_table
from repro.workflows import montage


def main(episodes: int = 100) -> None:
    wf = montage(50, seed=1)
    fleet_spec = {"t2.micro": 8, "t2.2xlarge": 3}  # Table I, 32 vCPUs
    store = ProvenanceStore()  # use a file path to persist across processes
    swfms = SciCumulusRL(provenance=store, cloud_profile=CloudProfile(), seed=42)
    params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=episodes)

    rows = []
    heft = swfms.run_workflow(wf, fleet_spec, HeftScheduler())
    rows.append(("HEFT", format_hms(heft.total_execution_time),
                 "-", f"${heft.cost:.4f}"))

    first = swfms.run_workflow(wf, fleet_spec, "reassign", params)
    rows.append(("ReASSIgN (cold)", format_hms(first.total_execution_time),
                 f"{first.learning_time:.2f}s", f"${first.cost:.4f}"))

    second = swfms.run_workflow(wf, fleet_spec, "reassign", params)
    rows.append(("ReASSIgN (provenance-warm)",
                 format_hms(second.total_execution_time),
                 f"{second.learning_time:.2f}s", f"${second.cost:.4f}"))

    print(render_table(
        ["Scheduler", "Total Execution Time", "Learning Time", "Cost"],
        rows,
        title=f"Montage-50 on {heft.fleet} (simulated us-east-1)",
    ))

    print("\nProvenance database contents:")
    for row in store.executions(wf.name):
        print(f"  execution #{row.id}: {row.scheduler:30s} "
              f"makespan {row.makespan:7.1f}s  {row.final_state}")
    for run in store.learning_runs(wf.name):
        print(f"  learning run #{run[0]}: params [{run[3]}] "
              f"{run[4]} episodes, sim makespan {run[6]:.1f}s")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100)
