#!/usr/bin/env python
"""Compare every scheduler in the library across all five workflows.

Extends the paper's HEFT-vs-ReASSIgN comparison with the other classic
heuristics its introduction cites (Min-Min, Max-Min, ...) and the whole
Pegasus workflow suite — the paper's "other workflows" future work.
All plans/policies are judged in the same throttle-aware simulator.

Run:  python examples/scheduler_shootout.py [episodes]
"""

import sys

from repro.core import ReassignLearner, ReassignParams
from repro.schedulers import (
    BudgetConstrainedScheduler,
    CpopScheduler,
    FcfsScheduler,
    GreedyOnlineScheduler,
    HeftScheduler,
    LocalityScheduler,
    MaxMinScheduler,
    MctScheduler,
    MinMinScheduler,
    OlbScheduler,
    PlanFollowingScheduler,
    RandomScheduler,
    SufferageScheduler,
)
from repro.sim import BurstThrottleFluctuation, WorkflowSimulator, t2_fleet
from repro.util.tables import render_table
from repro.workflows import available_workflows, make_workflow


def main(episodes: int = 50) -> None:
    fleet = t2_fleet(8, 3)  # 32 vCPUs
    throttle = BurstThrottleFluctuation(credit_seconds=240.0, throttle_factor=1.7)

    static = [
        HeftScheduler(),
        CpopScheduler(),
        MinMinScheduler(),
        MaxMinScheduler(),
        SufferageScheduler(),
        MctScheduler(),
        OlbScheduler(),
        BudgetConstrainedScheduler(budget_factor=0.5),
    ]
    online = [
        ("FCFS", FcfsScheduler),
        ("Greedy-MCT", GreedyOnlineScheduler),
        ("Locality", LocalityScheduler),
        ("Random", lambda: RandomScheduler(seed=9)),
    ]

    headers = ["Scheduler"] + available_workflows()
    rows = []
    columns = {}
    for name in available_workflows():
        columns[name] = make_workflow(name, seed=2)

    for scheduler in static:
        row = [scheduler.name]
        for name in available_workflows():
            wf = columns[name]
            plan = scheduler.plan(wf, fleet)
            sim = WorkflowSimulator(wf, fleet, PlanFollowingScheduler(plan),
                                    fluctuation=throttle, seed=0)
            row.append(round(sim.run().makespan, 1))
        rows.append(row)

    for label, factory in online:
        row = [label]
        for name in available_workflows():
            wf = columns[name]
            sim = WorkflowSimulator(wf, fleet, factory(),
                                    fluctuation=throttle, seed=0)
            row.append(round(sim.run().makespan, 1))
        rows.append(row)

    row = ["ReASSIgN"]
    for name in available_workflows():
        wf = columns[name]
        params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1,
                                episodes=episodes)
        result = ReassignLearner(wf, fleet, params, seed=4).learn()
        row.append(round(result.simulated_makespan, 1))
    rows.append(row)

    print(render_table(headers, rows,
                       title="Makespan [s] on 32 vCPUs (throttle-aware simulator)"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50)
