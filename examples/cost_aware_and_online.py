#!/usr/bin/env python
"""Extensions in action: cost-aware learning and online cloud execution.

Part 1 sweeps the cost-aware reward's weight and prints the
makespan-vs-dollars Pareto points (weight 0 = the paper's pure-time
reward).

Part 2 takes one trained Q-table and executes Montage three ways on a
stormy simulated region: replaying the frozen plan (the paper's mode),
online pure-exploitation (reacts to idle/busy but doesn't learn), and
online with learning enabled (keeps updating Q from cloud observations).

Run:  python examples/cost_aware_and_online.py [episodes]
"""

import sys

from repro.core import ReassignLearner, ReassignParams, ReassignScheduler
from repro.experiments.ablations import run_cost_ablation
from repro.scicumulus import CloudProfile, SciCumulusRL, execute_online
from repro.sim import t2_fleet
from repro.util.tables import render_table
from repro.workflows import montage


def main(episodes: int = 50) -> None:
    print("Part 1 — cost-aware reward trade-off (Montage-50, 16 vCPUs)")
    rows = run_cost_ablation(episodes=episodes, seed=1)
    print(render_table(
        ["cost weight", "makespan [s]", "usage cost [$]", "on 2xlarge"],
        [(w, round(m, 1), round(c, 4), n) for w, m, c, n in rows],
    ))

    print("\nPart 2 — one Q-table, three execution modes (stormy region)")
    wf = montage(50, seed=1)
    fleet = t2_fleet(8, 3)
    params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1,
                            episodes=episodes)
    learner = ReassignLearner(wf, fleet, params, seed=7)
    learned = learner.learn()
    profile = CloudProfile.stormy()

    swfms = SciCumulusRL(cloud_profile=profile, seed=7)
    plan_time = swfms.execute_plan(
        wf, {"t2.micro": 8, "t2.2xlarge": 3}, learned.plan, "plan"
    ).total_execution_time

    greedy = ReassignScheduler(params, qtable=learner.scheduler.qtable,
                               seed=7, learning=False)
    greedy_time = execute_online(wf, fleet, greedy, profile=profile,
                                 seed=7).makespan

    adaptive = ReassignScheduler(params, qtable=learner.scheduler.qtable,
                                 reward=learner.scheduler.reward,
                                 seed=7, learning=True)
    adaptive_time = execute_online(wf, fleet, adaptive, profile=profile,
                                   seed=7).makespan

    print(render_table(
        ["mode", "cloud time [s]"],
        [
            ("plan-based replay (the paper)", round(plan_time, 1)),
            ("online, pure exploitation", round(greedy_time, 1)),
            ("online, learning on the cloud", round(adaptive_time, 1)),
        ],
    ))
    print("\nOnly the online modes also survive spot revocations — see")
    print("benchmarks/test_ablation_robustness.py (A5b).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50)
