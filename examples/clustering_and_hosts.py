#!/usr/bin/env python
"""Task clustering and physical-host awareness.

Part 1 shows WorkflowSim-style clustering: with a hefty per-dispatch MPI
overhead, merging serial chains (vertical clustering) removes dispatches
for free, while over-eager horizontal merging costs parallelism.

Part 2 places the Table-I fleet on physical hosts (first-fit vs
best-fit) and fails the host carrying the 2xlarge mid-run: every
resident VM is revoked at once, and the online scheduler reroutes the
interrupted work to survivors.

Run:  python examples/clustering_and_hosts.py
"""

from repro.dag import horizontal_clustering, vertical_clustering
from repro.schedulers import GreedyOnlineScheduler, HeftScheduler, PlanFollowingScheduler
from repro.scicumulus import MpiConfig, MpiOverheadNetwork
from repro.sim import (
    Host,
    HostPool,
    WorkflowSimulator,
    host_failure_revocations,
    t2_fleet,
)
from repro.sim.spot import RevocationModel
from repro.util.tables import render_table
from repro.workflows import montage


class FixedRevocations(RevocationModel):
    def __init__(self, revocations):
        self._revocations = list(revocations)

    def revocations(self, vms, horizon, rng):
        return [r for r in self._revocations if r.time < horizon]


def main() -> None:
    wf = montage(50, seed=1)
    fleet = t2_fleet(8, 1)
    heavy_mpi = MpiOverheadNetwork(mpi=MpiConfig(message_latency=1.0,
                                                 master_overhead=1.0))

    print("Part 1 — clustering under a 2s dispatch overhead")
    rows = []
    for label, target in (
        ("none", None),
        ("vertical", vertical_clustering(wf)),
        ("horizontal(3)", horizontal_clustering(wf, group_size=3)),
    ):
        run_wf = wf if target is None else target.workflow
        plan = HeftScheduler().plan(run_wf, fleet)
        result = WorkflowSimulator(
            run_wf, fleet, PlanFollowingScheduler(plan),
            network=heavy_mpi, seed=0,
        ).run()
        rows.append((label, len(run_wf), round(result.makespan, 1)))
    print(render_table(["clustering", "jobs", "makespan [s]"], rows))

    print("\nPart 2 — host placement and a correlated host failure")
    hosts = [Host(0, pcpus=12, ram_gb=48.0), Host(1, pcpus=12, ram_gb=48.0)]
    pool = HostPool(hosts, policy="first-fit")
    placement = pool.place_fleet(fleet)
    for host in hosts:
        resident = sorted(vm.id for vm in host.vms)
        print(f"  host {host.id}: VMs {resident} "
              f"({host.used_pcpus}/{host.pcpus} pCPUs)")

    victim = pool.host_of(8).id  # the host carrying the 2xlarge
    revocations = host_failure_revocations(pool, victim, at=60.0)
    print(f"  failing host {victim} at t=60s revokes VMs "
          f"{sorted(r.vm_id for r in revocations)}")

    clean = WorkflowSimulator(wf, fleet, GreedyOnlineScheduler(), seed=3).run()
    failed = WorkflowSimulator(
        wf, fleet, GreedyOnlineScheduler(),
        revocations=FixedRevocations(revocations), seed=3,
    ).run()
    print(f"  makespan without failure: {clean.makespan:.1f}s")
    print(f"  makespan with host loss:  {failed.makespan:.1f}s "
          f"({failed.final_state}; all {len(failed.records)} activations "
          f"completed on surviving VMs)")


if __name__ == "__main__":
    main()
