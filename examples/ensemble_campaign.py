#!/usr/bin/env python
"""A multi-workflow campaign with provenance analytics.

Simulates a research group's week: four Montage tiles submitted as one
ensemble to a shared 32-vCPU fleet, scheduled three ways, everything
recorded to provenance — then the analytics module reads the history
back (per-VM §III-B performance report, per-activity statistics,
scheduler comparison).

Ensembles are where queue time stops being negligible, which is exactly
the regime the paper's µ-balanced reward was designed for.

Run:  python examples/ensemble_campaign.py [episodes]
"""

import sys

from repro.core import ReassignParams
from repro.schedulers import HeftScheduler, MinMinScheduler
from repro.scicumulus import SciCumulusRL
from repro.scicumulus.analytics import (
    render_vm_report,
    scheduler_comparison,
    vm_performance_report,
)
from repro.util.tables import render_table
from repro.workflows import montage_ensemble


def main(episodes: int = 30) -> None:
    ensemble = montage_ensemble(n_instances=4, n_activations=25, seed=9)
    print(f"Campaign workload: {ensemble.name} "
          f"({len(ensemble)} activations, {len(ensemble.entries())} entries)")

    fleet_spec = {"t2.micro": 8, "t2.2xlarge": 3}
    swfms = SciCumulusRL(seed=21)

    swfms.run_workflow(ensemble, fleet_spec, HeftScheduler())
    swfms.run_workflow(ensemble, fleet_spec, MinMinScheduler())
    swfms.run_workflow(ensemble, fleet_spec, "reassign",
                       ReassignParams(episodes=episodes))

    print("\nScheduler comparison (from provenance):")
    comparison = scheduler_comparison(swfms.provenance, ensemble.name)
    print(render_table(
        ["scheduler", "runs", "mean makespan [s]", "mean cost [$]"],
        [(name, runs, round(mk, 1), round(cost, 4))
         for name, (runs, mk, cost) in comparison.items()],
    ))

    print("\nPer-VM performance history (the reward's view of the fleet):")
    print(render_vm_report(vm_performance_report(swfms.provenance,
                                                 ensemble.name)))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30)
