#!/usr/bin/env python
"""Scheduling under failures, live migrations and performance storms.

The paper motivates RL scheduling with cloud dynamics that cost models
cannot express — live migrations and performance fluctuations — and its
state machine includes the *finished with failure* terminal.  This
example exercises all of those substrate features:

1. a flaky activity (`mDiffFit` fails 20% of attempts) with retries;
2. periodic live migrations pausing VMs mid-run;
3. a "stormy" interference profile;
4. a run with retries disabled, showing the *finished with failure*
   terminal state and failure cascading to descendants.

Run:  python examples/fault_tolerant_cloud.py
"""

from repro.schedulers import GreedyOnlineScheduler
from repro.sim import (
    BernoulliFailures,
    ComposedFluctuation,
    GaussianFluctuation,
    InterferenceFluctuation,
    PeriodicMigrations,
    WorkflowSimulator,
    t2_fleet,
)
from repro.workflows import montage


def main() -> None:
    wf = montage(50, seed=1)
    fleet = t2_fleet(8, 1)
    storm = ComposedFluctuation([
        GaussianFluctuation(sigma=0.15),
        InterferenceFluctuation(probability=0.1, slowdown=2.5),
    ])

    print("1) flaky mDiffFit (p=0.2) with up to 3 attempts:")
    sim = WorkflowSimulator(
        wf, fleet, GreedyOnlineScheduler(),
        failures=BernoulliFailures(0.2, activity="mDiffFit"),
        max_attempts=3, seed=5,
    )
    result = sim.run()
    retried = [r for r in result.records if r.attempts > 1]
    print(f"   state={result.final_state}  makespan={result.makespan:.1f}s  "
          f"{len(retried)} activations needed retries "
          f"(max {max((r.attempts for r in result.records), default=1)} attempts)")

    print("2) live migrations every ~120s of VM uptime:")
    sim = WorkflowSimulator(
        wf, fleet, GreedyOnlineScheduler(),
        migrations=PeriodicMigrations(mean_interval=120.0, min_downtime=10.0,
                                      max_downtime=25.0),
        seed=5,
    )
    result = sim.run()
    print(f"   state={result.final_state}  makespan={result.makespan:.1f}s "
          f"(vs ~190s without migrations)")

    print("3) performance storm (jitter + noisy neighbours):")
    sim = WorkflowSimulator(wf, fleet, GreedyOnlineScheduler(),
                            fluctuation=storm, seed=5)
    result = sim.run()
    print(f"   state={result.final_state}  makespan={result.makespan:.1f}s")

    print("4) hard failure with no retries -> terminal failure state:")
    sim = WorkflowSimulator(
        wf, fleet, GreedyOnlineScheduler(),
        failures=BernoulliFailures(1.0, activity="mBgModel"),
        max_attempts=1, seed=5,
    )
    result = sim.run()
    failed = [r for r in result.records if r.failed]
    executed = len(result.records)
    print(f"   state={result.final_state}  "
          f"{executed} activations dispatched before the DAG died, "
          f"{len(failed)} failed on a VM; everything downstream of "
          f"mBgModel was cancelled")


if __name__ == "__main__":
    main()
