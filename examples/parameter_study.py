#!/usr/bin/env python
"""Study how (α, γ, ε) affect ReASSIgN — a miniature of Tables II/III.

Sweeps the paper's parameter grid on the 16-vCPU fleet and prints the
learning-time and simulated-makespan tables, then summarizes which
settings win — the shapes to look for:

- ε = 0.1 (mostly exploitation, textbook convention) dominates, and
  makespans degrade as ε grows toward fully-random behaviour — the
  pattern visible in the paper's own Table III numbers;
- γ columns are nearly flat: with a single aggregated workflow state the
  bootstrap term cancels across actions (see EXPERIMENTS.md);
- slower α tends to help ("a longer history contains good information").

Run:  python examples/parameter_study.py [episodes] [grid_csv]
e.g.  python examples/parameter_study.py 50 0.1,0.5,1.0
"""

import sys
from collections import defaultdict

from repro.experiments.sweeps import run_paper_sweep


def main(episodes: int = 50, grid=(0.1, 0.5, 1.0)) -> None:
    sweep = run_paper_sweep(
        vcpu_fleets=(16,), episodes=episodes, seed=3, grid=grid
    )
    print(sweep.render_table2())
    print()
    print(sweep.render_table3())

    records = sweep.records[16]
    by_gamma = defaultdict(list)
    by_epsilon = defaultdict(list)
    for r in records:
        by_gamma[r.gamma].append(r.simulated_makespan)
        by_epsilon[r.epsilon].append(r.simulated_makespan)

    print("\nMean simulated makespan by gamma:")
    for g in sorted(by_gamma):
        vals = by_gamma[g]
        print(f"  gamma={g:g}: {sum(vals) / len(vals):8.2f}s")
    print("Mean simulated makespan by epsilon:")
    for e in sorted(by_epsilon):
        vals = by_epsilon[e]
        print(f"  epsilon={e:g}: {sum(vals) / len(vals):8.2f}s")

    best = min(records, key=lambda r: r.simulated_makespan)
    print(f"\nBest cell: alpha={best.alpha:g} gamma={best.gamma:g} "
          f"epsilon={best.epsilon:g} -> {best.simulated_makespan:.2f}s")


if __name__ == "__main__":
    episodes = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    grid = (
        tuple(float(x) for x in sys.argv[2].split(","))
        if len(sys.argv) > 2
        else (0.1, 0.5, 1.0)
    )
    main(episodes, grid)
