#!/usr/bin/env python
"""Quickstart: learn a scheduling plan for Montage-50 and compare to HEFT.

Reproduces the paper's core loop in miniature:

1. generate the Montage 50-activation workflow (the paper's workload);
2. build the 16-vCPU Table-I fleet (8x t2.micro + 1x t2.2xlarge);
3. run ReASSIgN for a number of learning episodes;
4. replay both the learned plan and HEFT's plan in the simulator and
   print a Gantt chart of each.

Run:  python examples/quickstart.py [episodes]
"""

import sys

from repro.core import ReassignLearner, ReassignParams
from repro.dag import profile_dag
from repro.schedulers import HeftScheduler, PlanFollowingScheduler
from repro.sim import BurstThrottleFluctuation, WorkflowSimulator, gantt_text, t2_fleet
from repro.workflows import montage


def main(episodes: int = 100) -> None:
    wf = montage(50, seed=1)
    profile = profile_dag(wf)
    print(f"Workflow {profile.name}: {profile.n_activations} activations, "
          f"{profile.n_levels} levels, critical path "
          f"{profile.critical_path_runtime:.1f}s, "
          f"avg parallelism {profile.parallelism:.2f}")

    fleet = t2_fleet(n_micro=8, n_2xlarge=1)  # Table I, 16 vCPUs
    # the environment both plans are judged in: shared storage staging +
    # deterministic t2.micro burst throttling
    throttle = BurstThrottleFluctuation(credit_seconds=240.0, throttle_factor=1.7)

    heft_plan = HeftScheduler().plan(wf, fleet)
    heft = WorkflowSimulator(
        wf, fleet, PlanFollowingScheduler(heft_plan), fluctuation=throttle, seed=0
    ).run()
    print(f"\nHEFT makespan: {heft.makespan:.1f}s")
    print(gantt_text(heft, width=90))

    params = ReassignParams(alpha=0.5, gamma=1.0, epsilon=0.1, episodes=episodes)
    result = ReassignLearner(wf, fleet, params, seed=7).learn()
    print(f"\nReASSIgN learned over {result.n_episodes} episodes "
          f"in {result.learning_time:.2f}s wall clock")
    from repro.util import sparkline
    print(f"  per-episode makespans: {sparkline(result.makespan_curve())}")
    print(f"  first episode makespan: {result.episodes[0].makespan:.1f}s")
    print(f"  best episode makespan:  {result.best_episode.makespan:.1f}s")
    print(f"  learned-plan makespan:  {result.simulated_makespan:.1f}s")

    replay = WorkflowSimulator(
        wf, fleet, PlanFollowingScheduler(result.plan), fluctuation=throttle, seed=0
    ).run()
    print(gantt_text(replay, width=90))

    big = [vm.id for vm in fleet if vm.capacity > 1]
    on_big = sum(1 for v in result.plan.assignment.values() if v in big)
    print(f"\nReASSIgN placed {on_big}/{len(result.plan.assignment)} activations "
          f"on the t2.2xlarge (VM {big[0]}); HEFT placed "
          f"{sum(1 for v in heft_plan.assignment.values() if v in big)}.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100)
