#!/usr/bin/env python3
"""Benchmark-regression guard: fresh ratios vs the frozen baselines.

The fast benchmark job regenerates ``results/BENCH_*.json`` on every CI
run.  This guard compares the *ratio* metrics in those fresh files
against the frozen copies committed at ``HEAD`` and fails when a ratio
regressed below tolerance.  Only ratios are guarded: they divide out
machine speed (both arms run in the same process on the same host), so
a slower CI runner cannot flake the gate, while a real slowdown in one
arm still moves the quotient.

Absolute numbers (seconds, episodes/s) are deliberately not compared —
they measure the runner, not the code.

A metric missing or ``null`` in the fresh file is skipped: the fast CI
variants legitimately omit arms the runner cannot reproduce (the
pre-refactor worktree arm needs the baseline commit in the object
store, which shallow clones lack).  A guarded *file* missing from the
frozen baseline is skipped too, so the guard does not break the very PR
that introduces a new benchmark.

Usage::

    python tools/bench_guard.py [--tolerance 0.75] [--ref HEAD]

Exit codes: 0 ok, 1 regression, 2 usage/e.g. git error.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]

#: file -> ratio metrics guarded in it (all "bigger is better").
GUARDED: Dict[str, List[str]] = {
    "results/BENCH_episode_throughput.json": ["live_speedup"],
    "results/BENCH_decision_loop.json": [
        "fast_vs_legacy_ratio",
        "fast_vs_pre_refactor_speedup",
    ],
    # Both metrics are *simulated* quantities — deterministic per seed,
    # machine-independent (see benchmarks/test_service_throughput.py).
    "results/BENCH_service_throughput.json": [
        "service_vs_serial_ratio",
        "fleet_utilization",
    ],
    # Warm (cache replay) vs cold (full parse) analyzer run, same
    # process/host (see benchmarks/test_reprolint_throughput.py).
    "results/BENCH_reprolint_throughput.json": ["warm_vs_cold_ratio"],
    # Lockstep-lane sweep vs the per-cell path, both arms in the same
    # process at the frozen paper-scale protocol (see
    # benchmarks/test_batched_engine.py).
    "results/BENCH_batched_engine.json": ["batched_vs_serial_speedup"],
    # Distributed actor/learner engine vs the serial learner, both arms
    # equivalence-gated in the same process at the frozen Montage-50
    # protocol (see benchmarks/test_distributed_learning.py).
    "results/BENCH_distributed_learning.json": [
        "distributed_vs_serial_speedup"
    ],
    # Chunked wave protocol (batch=8) vs one-episode waves (batch=1),
    # same actor count and pool transport, equivalence-gated (see
    # benchmarks/test_batched_actors.py).
    "results/BENCH_batched_actors.json": [
        "fused_wave_vs_single_speedup"
    ],
}


def _host_note(payload: dict) -> str:
    """``<cores>c/<pool mode>`` from a BENCH payload ('?' when absent).

    Older frozen baselines predate the ``host_cores``/``pool_mode``
    provenance keys (benchmarks/conftest.py ``host_provenance``), so
    both fields degrade to ``?`` instead of failing the guard.
    """
    cores = payload.get("host_cores")
    mode = payload.get("pool_mode")
    return (f"{cores}c" if cores is not None else "?c") + \
        "/" + (mode if mode is not None else "?")


def _frozen(path: str, ref: str) -> Optional[dict]:
    probe = subprocess.run(
        ["git", "-C", str(REPO_ROOT), "show", f"{ref}:{path}"],
        capture_output=True,
        text=True,
    )
    if probe.returncode != 0:
        return None
    return json.loads(probe.stdout)


def check(tolerance: float, ref: str) -> int:
    failures = 0
    rows: List[tuple] = []
    for rel_path, metrics in sorted(GUARDED.items()):
        fresh_file = REPO_ROOT / rel_path
        if not fresh_file.is_file():
            print(f"bench_guard: SKIP {rel_path} (no fresh file)")
            continue
        frozen = _frozen(rel_path, ref)
        if frozen is None:
            print(f"bench_guard: SKIP {rel_path} (not in {ref})")
            continue
        fresh = json.loads(fresh_file.read_text(encoding="utf-8"))
        for metric in metrics:
            fresh_value = fresh.get(metric)
            frozen_value = frozen.get(metric)
            if fresh_value is None:
                print(f"bench_guard: SKIP {rel_path}:{metric} "
                      "(not measured in this run)")
                continue
            if frozen_value is None:
                print(f"bench_guard: SKIP {rel_path}:{metric} "
                      "(no frozen value)")
                continue
            floor = tolerance * frozen_value
            verdict = "ok" if fresh_value >= floor else "REGRESSION"
            print(f"bench_guard: {verdict} {rel_path}:{metric} "
                  f"fresh={fresh_value:.3f} frozen={frozen_value:.3f} "
                  f"floor={floor:.3f}")
            if fresh_value < floor:
                failures += 1
            rows.append((rel_path, metric, fresh_value, frozen_value,
                         verdict, _host_note(fresh), _host_note(frozen)))
    if rows:
        # one line per guarded ratio, markdown-friendly for CI job
        # summaries: metric | fresh | frozen | fresh/frozen | verdict |
        # host.  The host column shows "<cores>c/<pool mode>" for the
        # fresh and frozen recordings — a ratio measured by the inline
        # engine on a 1-core runner is not directly comparable to one
        # the process pool produced, and the table should say so.
        print()
        print("| benchmark:metric | fresh | frozen | ratio | verdict "
              "| host (fresh/frozen) |")
        print("|---|---|---|---|---|---|")
        for (rel_path, metric, fresh_value, frozen_value, verdict,
             fresh_host, frozen_host) in rows:
            name = Path(rel_path).stem.replace("BENCH_", "")
            print(f"| {name}:{metric} | {fresh_value:.3f} "
                  f"| {frozen_value:.3f} "
                  f"| {fresh_value / frozen_value:.2f} | {verdict} "
                  f"| {fresh_host} / {frozen_host} |")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.75,
        help="fresh ratio must be >= tolerance * frozen ratio "
        "(default 0.75)",
    )
    parser.add_argument(
        "--ref",
        default="HEAD",
        help="git ref holding the frozen baselines (default HEAD)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance <= 1.0:
        parser.error("--tolerance must be in (0, 1]")
    return check(args.tolerance, args.ref)


if __name__ == "__main__":
    sys.exit(main())
